(** Contiguous row-major storage for SVM training data.

    A boxed [float array array] keeps every row in its own heap block:
    the SMO/kernel hot path then pays a pointer chase plus a bounds
    check per coordinate, and rows scattered across the heap defeat the
    prefetcher. [Flat.t] packs the same matrix into one unboxed float
    array, and the dot/distance primitives below run bounds-check-free
    over it after a single up-front index check.

    Bit-compatibility contract: every primitive accumulates in exactly
    the order of its boxed counterpart ({!Stc_numerics.Vec.dot} /
    [Vec.dist2], left to right over coordinates), so kernel values
    computed through a [Flat.t] are bit-identical to the boxed path —
    the property [Stc_qa.Oracle.flat_kernel_agrees] enforces. *)

type t

val of_rows : float array array -> t
(** Copies the rows into contiguous storage. Raises [Invalid_argument]
    on ragged input. An empty matrix has dimension 0. *)

val n_rows : t -> int
val dim : t -> int

val get : t -> int -> int -> float
(** [get t i j] is row [i], coordinate [j]; bounds-checked. *)

val row : t -> int -> float array
(** A fresh boxed copy of row [i]. *)

val dot : t -> int -> int -> float
(** [dot t i j] = Σₖ t[i,k]·t[j,k]. *)

val dist2 : t -> int -> int -> float
(** [dist2 t i j] = Σₖ (t[i,k] − t[j,k])². *)

val dot_vec : t -> int -> float array -> float
(** [dot_vec t i v]: row [i] against an external vector of the same
    dimension. Raises [Invalid_argument] on dimension mismatch. *)

val dist2_vec : t -> int -> float array -> float
