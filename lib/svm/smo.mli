(** Generic SMO solver for the SVM dual problem (libsvm formulation):

    {v min_α  1/2 αᵀQα + pᵀα
       s.t.   yᵀα = Δ,  0 ≤ α_i ≤ C_i v}

    with second-order working-set selection (Fan, Chen & Lin 2005).
    Both C-SVC and ε-SVR reduce to this problem; see {!Svc} and
    {!Svr}. *)

type problem = {
  size : int;
  q_row : int -> float array;
      (** [q_row i] returns row i of Q (length [size]); called often,
          so wrap it in a cache for expensive kernels *)
  q_diag : float array;  (** diagonal of Q *)
  p : float array;
  y : float array;       (** entries must be ±1 *)
  c : float array;       (** per-variable upper bound *)
}

type solution = {
  alpha : float array;
  rho : float;          (** decision offset: f(x) = Σᵢ yᵢαᵢK(xᵢ,x) − rho *)
  objective : float;
  iterations : int;
}

val solve : ?eps:float -> ?max_iter:int -> ?alpha0:float array -> problem -> solution
(** [eps] is the KKT violation tolerance (default 1e-3, libsvm's);
    [max_iter] caps the outer loop (default 10·size, at least 10 000);
    [alpha0] must be feasible if supplied (default all-zeros, which is
    feasible when Δ = 0). A nonzero [alpha0] counts toward the
    [stc_smo_warm_starts_total] registry counter. *)
