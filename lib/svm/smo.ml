(* Port of the libsvm Solver (Fan, Chen & Lin, JMLR 2005): first-order
   selection of i (maximal violating), second-order selection of j. *)

type problem = {
  size : int;
  q_row : int -> float array;
  q_diag : float array;
  p : float array;
  y : float array;
  c : float array;
}

type solution = {
  alpha : float array;
  rho : float;
  objective : float;
  iterations : int;
}

let tau = 1e-12

let m_solves = Stc_obs.Registry.counter "stc_smo_solves_total"
let m_iterations = Stc_obs.Registry.counter "stc_smo_iterations_total"

let solve ?(eps = 1e-3) ?max_iter ?alpha0 prob =
  let n = prob.size in
  assert (Array.length prob.p = n);
  assert (Array.length prob.y = n);
  assert (Array.length prob.c = n);
  Array.iter (fun yi -> assert (yi = 1.0 || yi = -1.0)) prob.y;
  let max_iter =
    match max_iter with Some m -> m | None -> Stdlib.max 10_000 (10 * n)
  in
  let alpha =
    match alpha0 with
    | Some a ->
      assert (Array.length a = n);
      Array.copy a
    | None -> Array.make n 0.0
  in
  (* gradient G_i = (Qα)_i + p_i *)
  let grad = Array.copy prob.p in
  for i = 0 to n - 1 do
    if alpha.(i) <> 0.0 then begin
      let qi = prob.q_row i in
      for t = 0 to n - 1 do
        grad.(t) <- grad.(t) +. (alpha.(i) *. qi.(t))
      done
    end
  done;
  let is_upper_bound i = alpha.(i) >= prob.c.(i) in
  let is_lower_bound i = alpha.(i) <= 0.0 in
  (* working-set selection; returns None when the KKT conditions hold *)
  let select_working_set () =
    let gmax = ref Float.neg_infinity and gmax_idx = ref (-1) in
    let gmax2 = ref Float.neg_infinity in
    for t = 0 to n - 1 do
      if prob.y.(t) = 1.0 then begin
        if not (is_upper_bound t) && -.grad.(t) >= !gmax then begin
          gmax := -.grad.(t);
          gmax_idx := t
        end
      end
      else if not (is_lower_bound t) && grad.(t) >= !gmax then begin
        gmax := grad.(t);
        gmax_idx := t
      end
    done;
    let i = !gmax_idx in
    if i < 0 then None
    else begin
      let qi = prob.q_row i in
      let obj_min = ref Float.infinity and gmin_idx = ref (-1) in
      for t = 0 to n - 1 do
        if prob.y.(t) = 1.0 then begin
          if not (is_lower_bound t) then begin
            let grad_diff = !gmax +. grad.(t) in
            if grad.(t) >= !gmax2 then gmax2 := grad.(t);
            if grad_diff > 0.0 then begin
              let quad =
                prob.q_diag.(i) +. prob.q_diag.(t)
                -. (2.0 *. prob.y.(i) *. qi.(t))
              in
              let quad = if quad > 0.0 then quad else tau in
              let obj = -.(grad_diff *. grad_diff) /. quad in
              if obj <= !obj_min then begin
                obj_min := obj;
                gmin_idx := t
              end
            end
          end
        end
        else if not (is_upper_bound t) then begin
          let grad_diff = !gmax -. grad.(t) in
          if -.grad.(t) >= !gmax2 then gmax2 := -.grad.(t);
          if grad_diff > 0.0 then begin
            let quad =
              prob.q_diag.(i) +. prob.q_diag.(t)
              +. (2.0 *. prob.y.(i) *. qi.(t))
            in
            let quad = if quad > 0.0 then quad else tau in
            let obj = -.(grad_diff *. grad_diff) /. quad in
            if obj <= !obj_min then begin
              obj_min := obj;
              gmin_idx := t
            end
          end
        end
      done;
      if !gmax +. !gmax2 < eps || !gmin_idx < 0 then None
      else Some (i, !gmin_idx)
    end
  in
  let iterations = ref 0 in
  let rec loop () =
    if !iterations >= max_iter then ()
    else
      match select_working_set () with
      | None -> ()
      | Some (i, j) ->
        incr iterations;
        let qi = prob.q_row i and qj = prob.q_row j in
        let ci = prob.c.(i) and cj = prob.c.(j) in
        let old_ai = alpha.(i) and old_aj = alpha.(j) in
        if prob.y.(i) <> prob.y.(j) then begin
          let quad =
            prob.q_diag.(i) +. prob.q_diag.(j) +. (2.0 *. qi.(j))
          in
          let quad = if quad > 0.0 then quad else tau in
          let delta = (-.grad.(i) -. grad.(j)) /. quad in
          let diff = alpha.(i) -. alpha.(j) in
          alpha.(i) <- alpha.(i) +. delta;
          alpha.(j) <- alpha.(j) +. delta;
          if diff > 0.0 then begin
            if alpha.(j) < 0.0 then begin
              alpha.(j) <- 0.0;
              alpha.(i) <- diff
            end
          end
          else if alpha.(i) < 0.0 then begin
            alpha.(i) <- 0.0;
            alpha.(j) <- -.diff
          end;
          if diff > ci -. cj then begin
            if alpha.(i) > ci then begin
              alpha.(i) <- ci;
              alpha.(j) <- ci -. diff
            end
          end
          else if alpha.(j) > cj then begin
            alpha.(j) <- cj;
            alpha.(i) <- cj +. diff
          end
        end
        else begin
          let quad =
            prob.q_diag.(i) +. prob.q_diag.(j) -. (2.0 *. qi.(j))
          in
          let quad = if quad > 0.0 then quad else tau in
          let delta = (grad.(i) -. grad.(j)) /. quad in
          let sum = alpha.(i) +. alpha.(j) in
          alpha.(i) <- alpha.(i) -. delta;
          alpha.(j) <- alpha.(j) +. delta;
          if sum > ci then begin
            if alpha.(i) > ci then begin
              alpha.(i) <- ci;
              alpha.(j) <- sum -. ci
            end
          end
          else if alpha.(j) < 0.0 then begin
            alpha.(j) <- 0.0;
            alpha.(i) <- sum
          end;
          if sum > cj then begin
            if alpha.(j) > cj then begin
              alpha.(j) <- cj;
              alpha.(i) <- sum -. cj
            end
          end
          else if alpha.(i) < 0.0 then begin
            alpha.(i) <- 0.0;
            alpha.(j) <- sum
          end
        end;
        let dai = alpha.(i) -. old_ai and daj = alpha.(j) -. old_aj in
        if dai <> 0.0 || daj <> 0.0 then
          for t = 0 to n - 1 do
            grad.(t) <- grad.(t) +. (qi.(t) *. dai) +. (qj.(t) *. daj)
          done;
        loop ()
  in
  loop ();
  (* rho as in libsvm: average gradient over free variables, or the
     midpoint of the feasibility interval when none are free *)
  let ub = ref Float.infinity and lb = ref Float.neg_infinity in
  let sum_free = ref 0.0 and n_free = ref 0 in
  for t = 0 to n - 1 do
    let yg = prob.y.(t) *. grad.(t) in
    if is_upper_bound t then begin
      if prob.y.(t) = -1.0 then ub := Float.min !ub yg
      else lb := Float.max !lb yg
    end
    else if is_lower_bound t then begin
      if prob.y.(t) = 1.0 then ub := Float.min !ub yg
      else lb := Float.max !lb yg
    end
    else begin
      incr n_free;
      sum_free := !sum_free +. yg
    end
  done;
  let rho =
    if !n_free > 0 then !sum_free /. float_of_int !n_free
    else (!ub +. !lb) /. 2.0
  in
  let objective =
    let acc = ref 0.0 in
    for t = 0 to n - 1 do
      acc := !acc +. (alpha.(t) *. (grad.(t) +. prob.p.(t)))
    done;
    !acc /. 2.0
  in
  Stc_obs.Registry.Counter.incr m_solves;
  Stc_obs.Registry.Counter.add m_iterations !iterations;
  { alpha; rho; objective; iterations = !iterations }
