(* Port of the libsvm Solver (Fan, Chen & Lin, JMLR 2005): first-order
   selection of i (maximal violating), second-order selection of j. *)

type problem = {
  size : int;
  q_row : int -> float array;
  q_diag : float array;
  p : float array;
  y : float array;
  c : float array;
}

type solution = {
  alpha : float array;
  rho : float;
  objective : float;
  iterations : int;
}

let tau = 1e-12

let m_solves = Stc_obs.Registry.counter "stc_smo_solves_total"
let m_iterations = Stc_obs.Registry.counter "stc_smo_iterations_total"
let m_warm_starts = Stc_obs.Registry.counter "stc_smo_warm_starts_total"

let solve ?(eps = 1e-3) ?max_iter ?alpha0 prob =
  let n = prob.size in
  assert (Array.length prob.p = n);
  assert (Array.length prob.y = n);
  assert (Array.length prob.c = n);
  Array.iter (fun yi -> assert (yi = 1.0 || yi = -1.0)) prob.y;
  let max_iter =
    match max_iter with Some m -> m | None -> Stdlib.max 10_000 (10 * n)
  in
  let y = prob.y and c = prob.c and q_diag = prob.q_diag in
  (* every row is scanned with unsafe accesses below, so the length is
     checked once per fetch instead of once per element *)
  let fetch_row i =
    let r = prob.q_row i in
    if Array.length r < n then
      invalid_arg "Smo.solve: q_row shorter than the problem size";
    r
  in
  let alpha =
    match alpha0 with
    | Some a ->
      assert (Array.length a = n);
      if Array.exists (fun ai -> ai <> 0.0) a then
        Stc_obs.Registry.Counter.incr m_warm_starts;
      Array.copy a
    | None -> Array.make n 0.0
  in
  (* gradient G_i = (Qα)_i + p_i *)
  let grad = Array.copy prob.p in
  for i = 0 to n - 1 do
    let ai = Array.unsafe_get alpha i in
    if ai <> 0.0 then begin
      let qi = fetch_row i in
      for t = 0 to n - 1 do
        Array.unsafe_set grad t
          (Array.unsafe_get grad t +. (ai *. Array.unsafe_get qi t))
      done
    end
  done;
  let is_upper_bound i = alpha.(i) >= prob.c.(i) in
  let is_lower_bound i = alpha.(i) <= 0.0 in
  (* working-set selection; returns None when the KKT conditions hold.
     The O(n) scans below are the hottest loops in the solver, so they
     use unsafe accesses with loop-invariant loads hoisted, and the
     first-order scan for i is fused into the gradient-update loop
     (one pass instead of two) — the floating-point operation order,
     comparisons and traversal order are exactly the separate-pass
     ones, so the iterates (and every downstream model byte) are
     unchanged. *)
  let gmax = ref Float.neg_infinity and gmax_idx = ref (-1) in
  let scan_max () =
    gmax := Float.neg_infinity;
    gmax_idx := -1;
    for t = 0 to n - 1 do
      let gt = Array.unsafe_get grad t in
      if Array.unsafe_get y t = 1.0 then begin
        if
          Array.unsafe_get alpha t < Array.unsafe_get c t && -.gt >= !gmax
        then begin
          gmax := -.gt;
          gmax_idx := t
        end
      end
      else if Array.unsafe_get alpha t > 0.0 && gt >= !gmax then begin
        gmax := gt;
        gmax_idx := t
      end
    done
  in
  (* second-order choice of j given the current (gmax, gmax_idx) *)
  let select_working_set () =
    let i = !gmax_idx in
    if i < 0 then None
    else begin
      let qi = fetch_row i in
      let gmax_v = !gmax in
      let qd_i = Array.unsafe_get q_diag i in
      let two_y_i = 2.0 *. Array.unsafe_get y i in
      let gmax2 = ref Float.neg_infinity in
      let obj_min = ref Float.infinity and gmin_idx = ref (-1) in
      for t = 0 to n - 1 do
        let gt = Array.unsafe_get grad t in
        if Array.unsafe_get y t = 1.0 then begin
          if Array.unsafe_get alpha t > 0.0 then begin
            let grad_diff = gmax_v +. gt in
            if gt >= !gmax2 then gmax2 := gt;
            if grad_diff > 0.0 then begin
              let quad =
                qd_i
                +. Array.unsafe_get q_diag t
                -. (two_y_i *. Array.unsafe_get qi t)
              in
              let quad = if quad > 0.0 then quad else tau in
              let obj = -.(grad_diff *. grad_diff) /. quad in
              if obj <= !obj_min then begin
                obj_min := obj;
                gmin_idx := t
              end
            end
          end
        end
        else if Array.unsafe_get alpha t < Array.unsafe_get c t then begin
          let grad_diff = gmax_v -. gt in
          if -.gt >= !gmax2 then gmax2 := -.gt;
          if grad_diff > 0.0 then begin
            let quad =
              qd_i
              +. Array.unsafe_get q_diag t
              +. (two_y_i *. Array.unsafe_get qi t)
            in
            let quad = if quad > 0.0 then quad else tau in
            let obj = -.(grad_diff *. grad_diff) /. quad in
            if obj <= !obj_min then begin
              obj_min := obj;
              gmin_idx := t
            end
          end
        end
      done;
      if !gmax +. !gmax2 < eps || !gmin_idx < 0 then None
      else Some (i, !gmin_idx)
    end
  in
  let iterations = ref 0 in
  scan_max ();
  let rec loop () =
    if !iterations >= max_iter then ()
    else
      match select_working_set () with
      | None -> ()
      | Some (i, j) ->
        incr iterations;
        let qi = fetch_row i and qj = fetch_row j in
        let ci = prob.c.(i) and cj = prob.c.(j) in
        let old_ai = alpha.(i) and old_aj = alpha.(j) in
        if prob.y.(i) <> prob.y.(j) then begin
          let quad =
            prob.q_diag.(i) +. prob.q_diag.(j) +. (2.0 *. qi.(j))
          in
          let quad = if quad > 0.0 then quad else tau in
          let delta = (-.grad.(i) -. grad.(j)) /. quad in
          let diff = alpha.(i) -. alpha.(j) in
          alpha.(i) <- alpha.(i) +. delta;
          alpha.(j) <- alpha.(j) +. delta;
          if diff > 0.0 then begin
            if alpha.(j) < 0.0 then begin
              alpha.(j) <- 0.0;
              alpha.(i) <- diff
            end
          end
          else if alpha.(i) < 0.0 then begin
            alpha.(i) <- 0.0;
            alpha.(j) <- -.diff
          end;
          if diff > ci -. cj then begin
            if alpha.(i) > ci then begin
              alpha.(i) <- ci;
              alpha.(j) <- ci -. diff
            end
          end
          else if alpha.(j) > cj then begin
            alpha.(j) <- cj;
            alpha.(i) <- cj +. diff
          end
        end
        else begin
          let quad =
            prob.q_diag.(i) +. prob.q_diag.(j) -. (2.0 *. qi.(j))
          in
          let quad = if quad > 0.0 then quad else tau in
          let delta = (grad.(i) -. grad.(j)) /. quad in
          let sum = alpha.(i) +. alpha.(j) in
          alpha.(i) <- alpha.(i) -. delta;
          alpha.(j) <- alpha.(j) +. delta;
          if sum > ci then begin
            if alpha.(i) > ci then begin
              alpha.(i) <- ci;
              alpha.(j) <- sum -. ci
            end
          end
          else if alpha.(j) < 0.0 then begin
            alpha.(j) <- 0.0;
            alpha.(i) <- sum
          end;
          if sum > cj then begin
            if alpha.(j) > cj then begin
              alpha.(j) <- cj;
              alpha.(i) <- sum -. cj
            end
          end
          else if alpha.(i) < 0.0 then begin
            alpha.(i) <- 0.0;
            alpha.(j) <- sum
          end
        end;
        let dai = alpha.(i) -. old_ai and daj = alpha.(j) -. old_aj in
        if dai <> 0.0 || daj <> 0.0 then begin
          (* fused gradient update + first-order scan for the next i:
             alphas are already final, so the bound tests below see
             exactly what a separate [scan_max] pass would *)
          gmax := Float.neg_infinity;
          gmax_idx := -1;
          for t = 0 to n - 1 do
            let gt =
              Array.unsafe_get grad t
              +. (Array.unsafe_get qi t *. dai)
              +. (Array.unsafe_get qj t *. daj)
            in
            Array.unsafe_set grad t gt;
            if Array.unsafe_get y t = 1.0 then begin
              if
                Array.unsafe_get alpha t < Array.unsafe_get c t
                && -.gt >= !gmax
              then begin
                gmax := -.gt;
                gmax_idx := t
              end
            end
            else if Array.unsafe_get alpha t > 0.0 && gt >= !gmax then begin
              gmax := gt;
              gmax_idx := t
            end
          done
        end
        else scan_max ();
        loop ()
  in
  loop ();
  (* rho as in libsvm: average gradient over free variables, or the
     midpoint of the feasibility interval when none are free *)
  let ub = ref Float.infinity and lb = ref Float.neg_infinity in
  let sum_free = ref 0.0 and n_free = ref 0 in
  for t = 0 to n - 1 do
    let yg = prob.y.(t) *. grad.(t) in
    if is_upper_bound t then begin
      if prob.y.(t) = -1.0 then ub := Float.min !ub yg
      else lb := Float.max !lb yg
    end
    else if is_lower_bound t then begin
      if prob.y.(t) = 1.0 then ub := Float.min !ub yg
      else lb := Float.max !lb yg
    end
    else begin
      incr n_free;
      sum_free := !sum_free +. yg
    end
  done;
  let rho =
    if !n_free > 0 then !sum_free /. float_of_int !n_free
    else (!ub +. !lb) /. 2.0
  in
  let objective =
    let acc = ref 0.0 in
    for t = 0 to n - 1 do
      acc := !acc +. (alpha.(t) *. (grad.(t) +. prob.p.(t)))
    done;
    !acc /. 2.0
  in
  Stc_obs.Registry.Counter.incr m_solves;
  Stc_obs.Registry.Counter.add m_iterations !iterations;
  { alpha; rho; objective; iterations = !iterations }
