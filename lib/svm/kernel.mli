(** Kernel functions for the SVM solvers. *)

type t =
  | Linear
  | Polynomial of { gamma : float; coef0 : float; degree : int }
      (** (γ·⟨x,y⟩ + c₀)^d *)
  | Rbf of { gamma : float }  (** exp(−γ·‖x−y‖²) *)
  | Sigmoid of { gamma : float; coef0 : float }  (** tanh(γ·⟨x,y⟩ + c₀) *)

val rbf : float -> t
val linear : t

val eval : t -> float array -> float array -> float
(** [eval k x y] computes K(x, y). *)

val eval_rows : t -> Flat.t -> int -> int -> float
(** [eval_rows k rows i j] computes K(rowsᵢ, rowsⱼ) over contiguous
    {!Flat} storage, bit-identical to [eval] on the boxed rows (the
    flat primitives accumulate in the same order as [Vec.dot]/
    [Vec.dist2]). This is the SMO hot-path entry point. *)

val eval_row_vec : t -> Flat.t -> int -> float array -> float
(** [eval_row_vec k rows i v] computes K(rowsᵢ, v), bit-identical to
    [eval rows.(i) v]. *)

val default_gamma : dim:int -> float
(** libsvm's default 1/dim heuristic. *)

val median_gamma : float array array -> float
(** The median heuristic: γ = 1 / median(‖xᵢ−xⱼ‖²) over a deterministic
    subsample of pairs. Unlike 1/dim it adapts to the data's actual
    spread, which matters when features are normalised by wide
    acceptability ranges and the population occupies a small ball.
    Falls back to {!default_gamma} when the data is degenerate (fewer
    than two distinct points). *)

val pp : Format.formatter -> t -> unit
