(** ε-support-vector regression — the paper's "ε-SVM". The compaction
    flow trains it on ±1 pass/fail targets and classifies by the sign
    of the regression function (Sec. 2.2 of the paper). *)

type model

type warm
(** Mutable warm-start state threaded across successive [train] calls.
    Each solve seeds SMO from the previous solve's alphas (bit-valid:
    the ε-SVR dual's extended labels are fixed by the formulation, so
    any previous solution satisfies the next problem's equality and
    box constraints whenever sizes and C agree — otherwise the state
    is ignored and the solve starts cold). The trained model itself is
    identical in meaning either way; only iteration count changes. *)

val warm_state : unit -> warm
(** A fresh, empty warm-start state (first use trains cold). *)

type snapshot
(** An immutable capture of a warm state's contents. *)

val warm_checkpoint : warm -> snapshot
(** The state as it stands, for a later {!warm_rollback}. *)

val warm_rollback : warm -> snapshot -> unit
(** Restore a previously checkpointed state — used by [Compaction] to
    discard a rejected candidate's alphas so seeds always come from
    the last {e accepted} model. *)

val train :
  ?c:float ->
  ?epsilon:float ->
  ?kernel:Kernel.t ->
  ?eps:float ->
  ?warm:warm ->
  x:float array array ->
  y:float array ->
  unit ->
  model
(** [epsilon] is the insensitive-tube half-width (default 0.1);
    [eps] the SMO stopping tolerance (default 1e-3); other defaults as
    in {!Svc.train}. When [warm] is given, the solve is seeded from
    the state's previous solution (if compatible) and the state is
    updated with this solve's alphas. *)

val predict : model -> float array -> float
(** The regression estimate f(x). *)

val classify : model -> float array -> int
(** sign of {!predict}: +1 or −1. *)

val n_support : model -> int
val bias : model -> float
val kernel : model -> Kernel.t

type raw = {
  raw_kernel : Kernel.t;
  raw_sv : float array array;
  raw_coef : float array;
  raw_b : float;
}
(** The model's internal representation, exposed for serialisation
    ({!Model_io}). *)

val to_raw : model -> raw

val of_raw : raw -> model
(** Rebuilds a model; no validation beyond array-length agreement
    (raises [Invalid_argument] on mismatch). *)
