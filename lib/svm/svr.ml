module Obs = Stc_obs.Registry

let m_kernel_evals = Obs.counter "stc_svm_kernel_evals_total"
let g_cache_hit_rate = Obs.gauge "stc_svm_cache_hit_rate"

type model = {
  kernel : Kernel.t;
  sv : float array array;
  coef : float array; (* alpha_i - alpha*_i *)
  b : float;
}

type warm = { mutable warm_alpha : float array option }
type snapshot = float array option

let warm_state () = { warm_alpha = None }
let warm_checkpoint w = w.warm_alpha
let warm_rollback w s = w.warm_alpha <- s

(* A previous solution is a feasible start for the next candidate's
   dual whenever the problem shape is unchanged: the extended labels
   [+1; −1] are fixed by the formulation (so yᵀα is preserved) and the
   box [0, C] only depends on the current C. Features, targets and
   gamma may all differ — that only moves the optimum, not the
   feasible region. Anything else (size or box mismatch) falls back to
   the cold zero start. *)
let warm_alpha0 warm ~n ~c =
  match warm with
  | None -> None
  | Some w -> (
    match w.warm_alpha with
    | Some a
      when Array.length a = n
           && Array.for_all (fun ai -> ai >= 0.0 && ai <= c) a ->
      Some a
    | _ -> None)

(* libsvm's EPSILON_SVR formulation: 2l variables [α; α*] with extended
   labels [+1; −1], p = [ε − z; ε + z], Q_st = y_s y_t K(s mod l, t mod l). *)
let train ?(c = 1.0) ?(epsilon = 0.1) ?kernel ?(eps = 1e-3) ?warm ~x ~y () =
  let l = Array.length x in
  if l = 0 then invalid_arg "Svr.train: empty training set";
  if Array.length y <> l then invalid_arg "Svr.train: x/y length mismatch";
  if c <= 0.0 then invalid_arg "Svr.train: c must be positive";
  if epsilon < 0.0 then invalid_arg "Svr.train: epsilon must be non-negative";
  let dim = Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> dim then invalid_arg "Svr.train: ragged inputs")
    x;
  let kernel =
    match kernel with
    | Some k -> k
    | None -> Kernel.rbf (Kernel.median_gamma x)
  in
  let n = 2 * l in
  let ys = Array.init n (fun s -> if s < l then 1.0 else -1.0) in
  let base s = if s < l then s else s - l in
  let fx = Flat.of_rows x in
  let cache =
    if n <= Row_cache.dense_limit then begin
      Obs.Counter.add m_kernel_evals (l * (l + 1) / 2);
      let km =
        Row_cache.fill_symmetric l (fun i j -> Kernel.eval_rows kernel fx i j)
      in
      Row_cache.dense
        (Array.init n (fun s ->
             let krow = km.(base s) in
             Array.init n (fun t -> ys.(s) *. ys.(t) *. krow.(base t))))
    end
    else begin
      (* rows s and s+l differ only in sign pattern, so the underlying
         kernel row is computed once and shared between them *)
      let krows = Array.make l [||] in
      let kernel_row bs =
        if Array.length krows.(bs) = 0 then begin
          Obs.Counter.add m_kernel_evals l;
          krows.(bs) <-
            Array.init l (fun t -> Kernel.eval_rows kernel fx bs t)
        end;
        krows.(bs)
      in
      Row_cache.create ~size:n ~row_bytes:(8 * n) (fun s ->
          let krow = kernel_row (base s) in
          (* ys values are exactly ±1, so the sign products reduce to
             IEEE-exact negations: bit-identical to the multiplication *)
          let row = Array.make n 0.0 in
          let flip = s >= l in
          for t = 0 to l - 1 do
            let k = Array.unsafe_get krow t in
            let pos = if flip then -.k else k in
            Array.unsafe_set row t pos;
            Array.unsafe_set row (t + l) (-.pos)
          done;
          row)
    end
  in
  Obs.Counter.add m_kernel_evals n (* the diagonal below *);
  let problem =
    {
      Smo.size = n;
      q_row = (fun s -> Row_cache.get cache s);
      q_diag =
        Array.init n (fun s ->
            let bs = base s in
            Kernel.eval_rows kernel fx bs bs);
      p =
        Array.init n (fun s ->
            if s < l then epsilon -. y.(s) else epsilon +. y.(s - l));
      y = ys;
      c = Array.make n c;
    }
  in
  let alpha0 = warm_alpha0 warm ~n ~c in
  let sol = Smo.solve ~eps ?alpha0 problem in
  (match warm with None -> () | Some w -> w.warm_alpha <- Some sol.Smo.alpha);
  let accesses = Row_cache.hits cache + Row_cache.misses cache in
  if accesses > 0 then
    Obs.Gauge.set g_cache_hit_rate
      (float_of_int (Row_cache.hits cache) /. float_of_int accesses);
  let sv = ref [] and coef = ref [] in
  for i = l - 1 downto 0 do
    let d = sol.Smo.alpha.(i) -. sol.Smo.alpha.(i + l) in
    if d <> 0.0 then begin
      sv := x.(i) :: !sv;
      coef := d :: !coef
    end
  done;
  {
    kernel;
    sv = Array.of_list !sv;
    coef = Array.of_list !coef;
    b = -.sol.Smo.rho;
  }

let predict m input =
  let acc = ref m.b in
  Array.iteri
    (fun i sv -> acc := !acc +. (m.coef.(i) *. Kernel.eval m.kernel sv input))
    m.sv;
  !acc

let classify m input = if predict m input >= 0.0 then 1 else -1

let n_support m = Array.length m.sv
let bias m = m.b
let kernel m = m.kernel

type raw = {
  raw_kernel : Kernel.t;
  raw_sv : float array array;
  raw_coef : float array;
  raw_b : float;
}

let to_raw m = { raw_kernel = m.kernel; raw_sv = m.sv; raw_coef = m.coef; raw_b = m.b }

let of_raw r =
  if Array.length r.raw_sv <> Array.length r.raw_coef then
    invalid_arg "of_raw: sv/coef length mismatch";
  { kernel = r.raw_kernel; sv = r.raw_sv; coef = r.raw_coef; b = r.raw_b }
