module Obs = Stc_obs.Registry

let m_kernel_evals = Obs.counter "stc_svm_kernel_evals_total"
let g_cache_hit_rate = Obs.gauge "stc_svm_cache_hit_rate"

type model = {
  kernel : Kernel.t;
  sv : float array array;
  coef : float array; (* alpha_i - alpha*_i *)
  b : float;
}

(* libsvm's EPSILON_SVR formulation: 2l variables [α; α*] with extended
   labels [+1; −1], p = [ε − z; ε + z], Q_st = y_s y_t K(s mod l, t mod l). *)
let train ?(c = 1.0) ?(epsilon = 0.1) ?kernel ?(eps = 1e-3) ~x ~y () =
  let l = Array.length x in
  if l = 0 then invalid_arg "Svr.train: empty training set";
  if Array.length y <> l then invalid_arg "Svr.train: x/y length mismatch";
  if c <= 0.0 then invalid_arg "Svr.train: c must be positive";
  if epsilon < 0.0 then invalid_arg "Svr.train: epsilon must be non-negative";
  let dim = Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> dim then invalid_arg "Svr.train: ragged inputs")
    x;
  let kernel =
    match kernel with
    | Some k -> k
    | None -> Kernel.rbf (Kernel.median_gamma x)
  in
  let n = 2 * l in
  let ys = Array.init n (fun s -> if s < l then 1.0 else -1.0) in
  let base s = if s < l then s else s - l in
  let raw_row s =
    Obs.Counter.add m_kernel_evals l;
    let bs = base s in
    let krow = Array.init l (fun t -> Kernel.eval kernel x.(bs) x.(t)) in
    Array.init n (fun t -> ys.(s) *. ys.(t) *. krow.(base t))
  in
  let cache = Row_cache.create ~size:n ~row_bytes:(8 * n) raw_row in
  Obs.Counter.add m_kernel_evals n (* the diagonal below *);
  let problem =
    {
      Smo.size = n;
      q_row = (fun s -> Row_cache.get cache s);
      q_diag = Array.init n (fun s -> Kernel.eval kernel x.(base s) x.(base s));
      p =
        Array.init n (fun s ->
            if s < l then epsilon -. y.(s) else epsilon +. y.(s - l));
      y = ys;
      c = Array.make n c;
    }
  in
  let sol = Smo.solve ~eps problem in
  let accesses = Row_cache.hits cache + Row_cache.misses cache in
  if accesses > 0 then
    Obs.Gauge.set g_cache_hit_rate
      (float_of_int (Row_cache.hits cache) /. float_of_int accesses);
  let sv = ref [] and coef = ref [] in
  for i = l - 1 downto 0 do
    let d = sol.Smo.alpha.(i) -. sol.Smo.alpha.(i + l) in
    if d <> 0.0 then begin
      sv := x.(i) :: !sv;
      coef := d :: !coef
    end
  done;
  {
    kernel;
    sv = Array.of_list !sv;
    coef = Array.of_list !coef;
    b = -.sol.Smo.rho;
  }

let predict m input =
  let acc = ref m.b in
  Array.iteri
    (fun i sv -> acc := !acc +. (m.coef.(i) *. Kernel.eval m.kernel sv input))
    m.sv;
  !acc

let classify m input = if predict m input >= 0.0 then 1 else -1

let n_support m = Array.length m.sv
let bias m = m.b
let kernel m = m.kernel

type raw = {
  raw_kernel : Kernel.t;
  raw_sv : float array array;
  raw_coef : float array;
  raw_b : float;
}

let to_raw m = { raw_kernel = m.kernel; raw_sv = m.sv; raw_coef = m.coef; raw_b = m.b }

let of_raw r =
  if Array.length r.raw_sv <> Array.length r.raw_coef then
    invalid_arg "of_raw: sv/coef length mismatch";
  { kernel = r.raw_kernel; sv = r.raw_sv; coef = r.raw_coef; b = r.raw_b }
