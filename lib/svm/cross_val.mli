(** k-fold cross-validation and hyper-parameter grid search for the
    classifiers.

    Every entry point takes an optional supervised pool
    ([Stc_process.Pool]): folds (and, for the grid search, the whole
    (point × fold) task grid) are embarrassingly parallel. Parallel
    runs are bit-identical to serial ones by construction — fold
    assignments are drawn from the rng up front exactly as the serial
    path draws them, each task writes a private slot indexed by its
    task number, and aggregation (fold summation order, tie-breaking)
    happens serially afterwards — verified by the determinism tests in
    [test_svm.ml]. *)

val kfold_indices :
  Stc_numerics.Rng.t -> n:int -> folds:int -> int array array
(** Shuffled fold assignment: [folds] arrays of indices partitioning
    [0, n). Requires [2 <= folds <= n]. *)

val svc_accuracy :
  ?c:float -> ?kernel:Kernel.t -> ?pool:Stc_process.Pool.t ->
  Stc_numerics.Rng.t ->
  x:float array array -> y:int array -> folds:int -> float
(** Mean held-out accuracy of {!Svc.train} over the folds. *)

val svc_fold_scores :
  ?c:float -> ?kernel:Kernel.t -> ?pool:Stc_process.Pool.t ->
  Stc_numerics.Rng.t ->
  x:float array array -> y:int array -> folds:int -> float array
(** The per-fold held-out accuracies behind {!svc_accuracy}, in fold
    order (fold [f] holds positions [f, f+folds, ...] of the shuffled
    index order). *)

val svr_sign_accuracy :
  ?c:float -> ?epsilon:float -> ?kernel:Kernel.t ->
  ?pool:Stc_process.Pool.t ->
  Stc_numerics.Rng.t ->
  x:float array array -> y:float array -> folds:int -> float
(** Mean held-out sign-agreement of {!Svr} used as a classifier. *)

type grid_result = { c : float; gamma : float; accuracy : float }

val grid_search_svc :
  ?pool:Stc_process.Pool.t ->
  Stc_numerics.Rng.t ->
  x:float array array -> y:int array -> folds:int ->
  cs:float array -> gammas:float array -> grid_result
(** Best (C, RBF γ) by cross-validated accuracy; ties go to the first
    combination scanned. Does not advance the caller's rng (folds are
    drawn from a copy, identically for every grid point). *)
