module Rng = Stc_numerics.Rng
module Pool = Stc_process.Pool

let kfold_indices rng ~n ~folds =
  if folds < 2 || folds > n then invalid_arg "Cross_val.kfold_indices: bad folds";
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  Array.init folds (fun f ->
      (* fold f takes positions f, f+folds, f+2*folds, ... *)
      let count = ((n - f - 1) / folds) + 1 in
      Array.init count (fun k -> order.(f + (k * folds))))

let split_fold x y fold_idx n =
  let in_fold = Array.make n false in
  Array.iter (fun i -> in_fold.(i) <- true) fold_idx;
  let train_x = ref [] and train_y = ref [] in
  for i = n - 1 downto 0 do
    if not in_fold.(i) then begin
      train_x := x.(i) :: !train_x;
      train_y := y.(i) :: !train_y
    end
  done;
  (Array.of_list !train_x, Array.of_list !train_y)

(* Parallel-determinism scheme: fold assignments are drawn from the rng
   up front (exactly the draws the serial path makes), each (fold)
   task is a pure function of its index writing into a private slot,
   and aggregation happens serially in fold order afterwards. Work
   stealing may run folds in any order on any domain; the summation
   sequence — hence every bit of the result — is unchanged. *)
let fold_scores ?pool rng ~n ~folds evaluate =
  let assignments = kfold_indices rng ~n ~folds in
  let scores = Array.make folds 0.0 in
  (match pool with
  | Some pool -> Pool.run pool ~n:folds (fun f -> scores.(f) <- evaluate assignments.(f))
  | None -> Array.iteri (fun f idx -> scores.(f) <- evaluate idx) assignments);
  scores

let mean_over_folds ?pool rng ~n ~folds evaluate =
  let scores = fold_scores ?pool rng ~n ~folds evaluate in
  Array.fold_left ( +. ) 0.0 scores /. float_of_int folds

let svc_evaluate ?c ?kernel ~x ~y ~n fold_idx =
  let train_x, train_y = split_fold x y fold_idx n in
  let model = Svc.train ?c ?kernel ~x:train_x ~y:train_y () in
  let correct =
    Array.fold_left
      (fun acc i -> if Svc.predict model x.(i) = y.(i) then acc + 1 else acc)
      0 fold_idx
  in
  float_of_int correct /. float_of_int (Array.length fold_idx)

let svc_accuracy ?c ?kernel ?pool rng ~x ~y ~folds =
  let n = Array.length x in
  mean_over_folds ?pool rng ~n ~folds (svc_evaluate ?c ?kernel ~x ~y ~n)

let svc_fold_scores ?c ?kernel ?pool rng ~x ~y ~folds =
  let n = Array.length x in
  fold_scores ?pool rng ~n ~folds (svc_evaluate ?c ?kernel ~x ~y ~n)

let svr_sign_accuracy ?c ?epsilon ?kernel ?pool rng ~x ~y ~folds =
  let n = Array.length x in
  let evaluate fold_idx =
    let train_x, train_y = split_fold x y fold_idx n in
    let model = Svr.train ?c ?epsilon ?kernel ~x:train_x ~y:train_y () in
    let correct =
      Array.fold_left
        (fun acc i ->
          let sign = if y.(i) >= 0.0 then 1 else -1 in
          if Svr.classify model x.(i) = sign then acc + 1 else acc)
        0 fold_idx
    in
    float_of_int correct /. float_of_int (Array.length fold_idx)
  in
  mean_over_folds ?pool rng ~n ~folds evaluate

type grid_result = { c : float; gamma : float; accuracy : float }

let grid_search_svc ?pool rng ~x ~y ~folds ~cs ~gammas =
  if Array.length cs = 0 || Array.length gammas = 0 then
    invalid_arg "Cross_val.grid_search_svc: empty grid";
  let n = Array.length x in
  (* The serial path copies the rng per grid point, so every point sees
     identical fold assignments; drawing them once from a copy is the
     same thing, and leaves the caller's rng untouched as before. *)
  let assignments = kfold_indices (Rng.copy rng) ~n ~folds in
  let points =
    Array.concat
      (Array.to_list
         (Array.map (fun c -> Array.map (fun gamma -> (c, gamma)) gammas) cs))
  in
  let np = Array.length points in
  let accs = Array.make (np * folds) 0.0 in
  let evaluate t =
    let c, gamma = points.(t / folds) in
    accs.(t) <-
      svc_evaluate ~c ~kernel:(Kernel.rbf gamma) ~x ~y ~n
        assignments.(t mod folds)
  in
  (match pool with
  | Some pool -> Pool.run pool ~n:(np * folds) evaluate
  | None ->
    for t = 0 to (np * folds) - 1 do
      evaluate t
    done);
  (* aggregate in the serial scan order: fold sum left to right, ties
     keep the first point — bit-identical to the sequential search *)
  let best = ref None in
  Array.iteri
    (fun p (c, gamma) ->
      let total = ref 0.0 in
      for f = 0 to folds - 1 do
        total := !total +. accs.((p * folds) + f)
      done;
      let accuracy = !total /. float_of_int folds in
      match !best with
      | Some b when b.accuracy >= accuracy -> ()
      | Some _ | None -> best := Some { c; gamma; accuracy })
    points;
  match !best with
  | Some b -> b
  | None -> assert false
