(* Process-wide cache traffic, on top of the per-cache ints that feed
   the hit-rate gauge after each solve. *)
let m_hits = Stc_obs.Registry.counter "stc_svm_cache_hits_total"
let m_misses = Stc_obs.Registry.counter "stc_svm_cache_misses_total"

type t = {
  compute : int -> float array;
  table : (int, float array) Hashtbl.t;
  order : int Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size ~row_bytes ?(budget_bytes = 64_000_000) compute =
  ignore size;
  let capacity = Stdlib.max 16 (budget_bytes / Stdlib.max 1 row_bytes) in
  {
    compute;
    table = Hashtbl.create 256;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
  }

(* Below this problem size the whole kernel matrix is materialised up
   front with [fill_symmetric] (cache-friendly, half the evals); above
   it rows are computed lazily through the FIFO cache. *)
let dense_limit = 256

let fill_symmetric n entry =
  let rows = Array.init n (fun _ -> Array.make n 0.0) in
  let b = 64 in
  let nb = (n + b - 1) / b in
  for ib = 0 to nb - 1 do
    for jb = ib to nb - 1 do
      let i1 = Stdlib.min n ((ib * b) + b) in
      let j0 = jb * b and j1 = Stdlib.min n ((jb * b) + b) in
      for i = ib * b to i1 - 1 do
        for j = Stdlib.max i j0 to j1 - 1 do
          let v = entry i j in
          rows.(i).(j) <- v;
          if j <> i then rows.(j).(i) <- v
        done
      done
    done
  done;
  rows

let dense rows =
  let n = Array.length rows in
  let table = Hashtbl.create (Stdlib.max 16 (2 * n)) in
  let order = Queue.create () in
  Array.iteri
    (fun i r ->
      Hashtbl.add table i r;
      Queue.add i order)
    rows;
  {
    compute = (fun i -> rows.(i));
    table;
    order;
    capacity = Stdlib.max 16 n;
    hits = 0;
    misses = 0;
  }

let get t i =
  match Hashtbl.find_opt t.table i with
  | Some row ->
    t.hits <- t.hits + 1;
    Stc_obs.Registry.Counter.incr m_hits;
    row
  | None ->
    t.misses <- t.misses + 1;
    Stc_obs.Registry.Counter.incr m_misses;
    let row = t.compute i in
    if Hashtbl.length t.table >= t.capacity then begin
      match Queue.take_opt t.order with
      | Some victim -> Hashtbl.remove t.table victim
      | None -> ()
    end;
    Hashtbl.add t.table i row;
    Queue.add i t.order;
    row

let hits t = t.hits
let misses t = t.misses
