(* Process-wide cache traffic, on top of the per-cache ints that feed
   the hit-rate gauge after each solve. *)
let m_hits = Stc_obs.Registry.counter "stc_svm_cache_hits_total"
let m_misses = Stc_obs.Registry.counter "stc_svm_cache_misses_total"

type t = {
  compute : int -> float array;
  table : (int, float array) Hashtbl.t;
  order : int Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size ~row_bytes ?(budget_bytes = 64_000_000) compute =
  ignore size;
  let capacity = Stdlib.max 16 (budget_bytes / Stdlib.max 1 row_bytes) in
  {
    compute;
    table = Hashtbl.create 256;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
  }

let get t i =
  match Hashtbl.find_opt t.table i with
  | Some row ->
    t.hits <- t.hits + 1;
    Stc_obs.Registry.Counter.incr m_hits;
    row
  | None ->
    t.misses <- t.misses + 1;
    Stc_obs.Registry.Counter.incr m_misses;
    let row = t.compute i in
    if Hashtbl.length t.table >= t.capacity then begin
      match Queue.take_opt t.order with
      | Some victim -> Hashtbl.remove t.table victim
      | None -> ()
    end;
    Hashtbl.add t.table i row;
    Queue.add i t.order;
    row

let hits t = t.hits
let misses t = t.misses
