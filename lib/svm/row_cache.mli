(** FIFO cache for kernel-matrix rows: SMO touches rows repeatedly, and
    recomputing a row costs O(l·d). *)

type t

val create : size:int -> row_bytes:int -> ?budget_bytes:int ->
  (int -> float array) -> t
(** [create ~size ~row_bytes f] caches results of [f] for keys in
    [0, size). At most [budget_bytes / row_bytes] rows are kept
    (default budget 64 MB, at least 16 rows). *)

val dense_limit : int
(** Problem-size threshold below which the training paths materialise
    the whole kernel matrix via {!fill_symmetric} + {!dense} instead of
    lazy per-row computation. *)

val fill_symmetric : int -> (int -> int -> float) -> float array array
(** [fill_symmetric n entry] builds the n×n matrix of [entry i j] with
    a blocked traversal that evaluates only the upper triangle and
    mirrors it. Only valid when [entry] is bit-for-bit symmetric —
    true of all {!Kernel.eval_rows} kernels (per-element products
    commute and accumulation order is fixed). *)

val dense : float array array -> t
(** [dense rows] wraps a fully precomputed kernel matrix: every [get]
    is a hit and no row is ever evicted. Backs the blocked
    small-problem path where materialising the whole matrix up front
    is cheaper than lazy per-row computation. *)

val get : t -> int -> float array

val hits : t -> int
val misses : t -> int
