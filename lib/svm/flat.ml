(* Contiguous row-major storage for the SVM kernel hot path.

   One unboxed [float array] of length [n * dim] replaces the boxed
   [float array array]: no per-row indirection, rows adjacent in
   memory, and the inner loops below use [Array.unsafe_get] after a
   single up-front row-index check. Accumulation order is exactly that
   of [Stc_numerics.Vec.dot]/[Vec.dist2] (left to right over
   coordinates, a single running sum) so results are bit-identical to
   the boxed path. *)

type t = { data : float array; n : int; dim : int }

let of_rows rows =
  let n = Array.length rows in
  let dim = if n = 0 then 0 else Array.length rows.(0) in
  Array.iteri
    (fun i r ->
      if Array.length r <> dim then
        invalid_arg
          (Printf.sprintf "Flat.of_rows: ragged row %d (%d <> %d)" i
             (Array.length r) dim))
    rows;
  let data = Array.make (n * dim) 0.0 in
  Array.iteri (fun i r -> Array.blit r 0 data (i * dim) dim) rows;
  { data; n; dim }

let n_rows t = t.n
let dim t = t.dim

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Flat: row %d" i)

let get t i j =
  check t i;
  if j < 0 || j >= t.dim then invalid_arg (Printf.sprintf "Flat: col %d" j);
  t.data.((i * t.dim) + j)

let row t i =
  check t i;
  Array.sub t.data (i * t.dim) t.dim

let dot t i j =
  check t i;
  check t j;
  let d = t.dim in
  let data = t.data in
  let bi = i * d and bj = j * d in
  let acc = ref 0.0 in
  for k = 0 to d - 1 do
    acc :=
      !acc +. (Array.unsafe_get data (bi + k) *. Array.unsafe_get data (bj + k))
  done;
  !acc

let dist2 t i j =
  check t i;
  check t j;
  let d = t.dim in
  let data = t.data in
  let bi = i * d and bj = j * d in
  let acc = ref 0.0 in
  for k = 0 to d - 1 do
    let dk = Array.unsafe_get data (bi + k) -. Array.unsafe_get data (bj + k) in
    acc := !acc +. (dk *. dk)
  done;
  !acc

let check_vec t v =
  if Array.length v <> t.dim then
    invalid_arg
      (Printf.sprintf "Flat: vector length %d <> dim %d" (Array.length v) t.dim)

let dot_vec t i v =
  check t i;
  check_vec t v;
  let d = t.dim in
  let data = t.data in
  let bi = i * d in
  let acc = ref 0.0 in
  for k = 0 to d - 1 do
    acc := !acc +. (Array.unsafe_get data (bi + k) *. Array.unsafe_get v k)
  done;
  !acc

let dist2_vec t i v =
  check t i;
  check_vec t v;
  let d = t.dim in
  let data = t.data in
  let bi = i * d in
  let acc = ref 0.0 in
  for k = 0 to d - 1 do
    let dk = Array.unsafe_get data (bi + k) -. Array.unsafe_get v k in
    acc := !acc +. (dk *. dk)
  done;
  !acc
