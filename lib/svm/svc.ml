module Obs = Stc_obs.Registry

let m_kernel_evals = Obs.counter "stc_svm_kernel_evals_total"
let g_cache_hit_rate = Obs.gauge "stc_svm_cache_hit_rate"

type model = {
  kernel : Kernel.t;
  sv : float array array;
  coef : float array; (* y_i * alpha_i *)
  b : float;
}

let train ?(c = 1.0) ?kernel ?(eps = 1e-3) ~x ~y () =
  let l = Array.length x in
  if l = 0 then invalid_arg "Svc.train: empty training set";
  if Array.length y <> l then invalid_arg "Svc.train: x/y length mismatch";
  let dim = Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> dim then invalid_arg "Svc.train: ragged inputs")
    x;
  ignore dim;
  Array.iter
    (fun yi ->
      if yi <> 1 && yi <> -1 then invalid_arg "Svc.train: labels must be +/-1")
    y;
  if c <= 0.0 then invalid_arg "Svc.train: c must be positive";
  if Array.for_all (fun yi -> yi = y.(0)) y then
    invalid_arg "Svc.train: training data contains a single class";
  let kernel =
    match kernel with
    | Some k -> k
    | None -> Kernel.rbf (Kernel.median_gamma x)
  in
  let yf = Array.map float_of_int y in
  let fx = Flat.of_rows x in
  let q i t = yf.(i) *. yf.(t) *. Kernel.eval_rows kernel fx i t in
  let cache =
    if l <= Row_cache.dense_limit then begin
      Obs.Counter.add m_kernel_evals (l * (l + 1) / 2);
      Row_cache.dense (Row_cache.fill_symmetric l q)
    end
    else
      Row_cache.create ~size:l ~row_bytes:(8 * l) (fun i ->
          Obs.Counter.add m_kernel_evals l;
          Array.init l (fun t -> q i t))
  in
  Obs.Counter.add m_kernel_evals l (* the diagonal below *);
  let problem =
    {
      Smo.size = l;
      q_row = (fun i -> Row_cache.get cache i);
      q_diag = Array.init l (fun i -> Kernel.eval_rows kernel fx i i);
      p = Array.make l (-1.0);
      y = yf;
      c = Array.make l c;
    }
  in
  let sol = Smo.solve ~eps problem in
  let accesses = Row_cache.hits cache + Row_cache.misses cache in
  if accesses > 0 then
    Obs.Gauge.set g_cache_hit_rate
      (float_of_int (Row_cache.hits cache) /. float_of_int accesses);
  let sv = ref [] and coef = ref [] in
  for i = l - 1 downto 0 do
    if sol.Smo.alpha.(i) > 0.0 then begin
      sv := x.(i) :: !sv;
      coef := (yf.(i) *. sol.Smo.alpha.(i)) :: !coef
    end
  done;
  {
    kernel;
    sv = Array.of_list !sv;
    coef = Array.of_list !coef;
    b = -.sol.Smo.rho;
  }

let decision m input =
  let acc = ref m.b in
  Array.iteri
    (fun i sv -> acc := !acc +. (m.coef.(i) *. Kernel.eval m.kernel sv input))
    m.sv;
  !acc

let predict m input = if decision m input >= 0.0 then 1 else -1

let n_support m = Array.length m.sv
let support_vectors m = m.sv
let bias m = m.b
let kernel m = m.kernel
let dual_coefs m = m.coef

type raw = {
  raw_kernel : Kernel.t;
  raw_sv : float array array;
  raw_coef : float array;
  raw_b : float;
}

let to_raw m = { raw_kernel = m.kernel; raw_sv = m.sv; raw_coef = m.coef; raw_b = m.b }

let of_raw r =
  if Array.length r.raw_sv <> Array.length r.raw_coef then
    invalid_arg "of_raw: sv/coef length mismatch";
  { kernel = r.raw_kernel; sv = r.raw_sv; coef = r.raw_coef; b = r.raw_b }
