module Obs = Stc_obs.Registry
module Trace = Stc_obs.Trace

(* Greedy-loop observability: one span per examined candidate (with
   train/validate child spans and an accept/reject marker), counters
   for the decisions, and latency histograms for the two expensive
   phases. *)
let m_candidates = Obs.counter "stc_compaction_candidates_total"
let m_accepted = Obs.counter "stc_compaction_accepted_total"
let m_rejected = Obs.counter "stc_compaction_rejected_total"
let m_replayed = Obs.counter "stc_compaction_replayed_total"
let h_train = Obs.histogram "stc_compaction_train_s"
let h_validate = Obs.histogram "stc_compaction_validate_s"
let g_last_error = Obs.gauge "stc_compaction_last_error"

type learner = Learner.spec =
  | Epsilon_svr of { c : float; epsilon : float; gamma : float option }
  | C_svc of { c : float; gamma : float option }
  | Mlp of Stc_learn.Mlp.config

type validation =
  | On_test_data
  | On_train_data

type config = {
  learner : learner;
  tolerance : float;
  guard_fraction : float;
  grid : Grid_compact.config option;
  measured_guard : bool;
  validation : validation;
  warm_start : bool;
}

let default_config =
  {
    learner = Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = None };
    tolerance = 0.01;
    guard_fraction = 0.01;
    grid = None;
    measured_guard = true;
    validation = On_test_data;
    warm_start = true;
  }

type flow = {
  specs : Spec.t array;
  kept : int array;
  dropped : int array;
  band : Guard_band.t option;
  guard_fraction : float;
  measured_guard : bool;
}

let identity_flow specs =
  {
    specs;
    kept = Array.init (Array.length specs) (fun i -> i);
    dropped = [||];
    band = None;
    guard_fraction = 0.0;
    measured_guard = false;
  }

let complement ~k dropped =
  let is_dropped = Array.make k false in
  Array.iter
    (fun j ->
      if j < 0 || j >= k then invalid_arg "Compaction: bad spec index";
      if is_dropped.(j) then invalid_arg "Compaction: duplicate dropped index";
      is_dropped.(j) <- true)
    dropped;
  let kept = ref [] in
  for j = k - 1 downto 0 do
    if not (is_dropped.(j)) then kept := j :: !kept
  done;
  Array.of_list !kept

(* Train one ±1 classifier on (features, labels), returned with its
   model data so flows can be serialised. Degenerate one-class inputs
   yield a constant predictor. Delegates to the LEARNER contract. *)
let train_classifier ?warm learner features labels =
  Learner.train ?warm learner ~features ~labels

let maybe_grid config features labels =
  match config.grid with
  | None -> (features, labels)
  | Some grid_config ->
    let r = Grid_compact.compact ~config:grid_config ~features ~labels () in
    (r.Grid_compact.features, r.Grid_compact.labels)

(* Labels for "instance passes every dropped spec", judged against
   ranges perturbed by [fraction] (0 = nominal). *)
let dropped_labels data ~dropped ~fraction =
  let specs = Device_data.specs data in
  let judged =
    if fraction = 0.0 then specs
    else Array.map (fun s -> Spec.perturb s ~fraction) specs
  in
  Device_data.pass_labels_with data ~specs:judged ~subset:dropped

let train_predictor config data ~dropped =
  let k = Device_data.n_specs data in
  if Array.length dropped = 0 then
    invalid_arg "Compaction.train_predictor: empty dropped set";
  let kept = complement ~k dropped in
  let features = Device_data.features data ~keep:kept in
  let train fraction =
    let labels = dropped_labels data ~dropped ~fraction in
    let features', labels' = maybe_grid config features labels in
    train_classifier config.learner features' labels'
  in
  let nominal = train 0.0 in
  let band =
    if config.guard_fraction = 0.0 then Guard_band.single_model nominal
    else
      Guard_band.of_models
        ~tight:(train (-.config.guard_fraction))
        ~loose:(train config.guard_fraction)
  in
  (band, Guard_band.predict nominal)

let make_flow config data ~dropped =
  let k = Device_data.n_specs data in
  let kept = complement ~k dropped in
  let band =
    if Array.length dropped = 0 then None
    else begin
      let band, _ = train_predictor config data ~dropped in
      Some band
    end
  in
  {
    specs = Device_data.specs data;
    kept;
    dropped = Array.copy dropped;
    band;
    guard_fraction = config.guard_fraction;
    measured_guard = config.measured_guard;
  }

(* Three-way verdict on the explicitly measured (kept) specs. *)
let measured_verdict flow row =
  let delta = if flow.measured_guard then flow.guard_fraction else 0.0 in
  let worst = ref Guard_band.Good in
  Array.iter
    (fun j ->
      let spec = flow.specs.(j) in
      let v = row.(j) in
      let inside_loose =
        if delta = 0.0 then Spec.passes spec v
        else Spec.passes (Spec.perturb spec ~fraction:delta) v
      in
      if not inside_loose then worst := Guard_band.Bad
      else begin
        let inside_tight =
          if delta = 0.0 then Spec.passes spec v
          else Spec.passes (Spec.perturb spec ~fraction:(-.delta)) v
        in
        if not inside_tight then begin
          match !worst with
          | Guard_band.Good -> worst := Guard_band.Guard
          | Guard_band.Guard | Guard_band.Bad -> ()
        end
      end)
    flow.kept;
  !worst

let flow_verdict flow row =
  let measured = measured_verdict flow row in
  match measured with
  | Guard_band.Bad -> Guard_band.Bad
  | Guard_band.Guard | Guard_band.Good ->
    let model_verdict =
      match flow.band with
      | None -> Guard_band.Good
      | Some band ->
        let features =
          Array.map (fun j -> Spec.normalize flow.specs.(j) row.(j)) flow.kept
        in
        Guard_band.classify band features
    in
    (match (measured, model_verdict) with
     | Guard_band.Good, v -> v
     | Guard_band.Guard, Guard_band.Bad -> Guard_band.Bad
     | Guard_band.Guard, (Guard_band.Good | Guard_band.Guard) ->
       Guard_band.Guard
     | Guard_band.Bad, _ -> assert false)

let evaluate_flow flow data =
  if Array.length (Device_data.specs data) <> Array.length flow.specs then
    invalid_arg "Compaction.evaluate_flow: spec count mismatch";
  let n = Device_data.n_instances data in
  let truth = Array.init n (fun i -> Device_data.passes_all data ~instance:i) in
  let verdicts =
    Array.init n (fun i -> flow_verdict flow (Device_data.instance_row data i))
  in
  Metrics.tally ~truth ~verdicts

let evaluate_flow_weighted flow data =
  if Array.length (Device_data.specs data) <> Array.length flow.specs then
    invalid_arg "Compaction.evaluate_flow_weighted: spec count mismatch";
  let n = Device_data.n_instances data in
  let truth = Array.init n (fun i -> Device_data.passes_all data ~instance:i) in
  let verdicts =
    Array.init n (fun i -> flow_verdict flow (Device_data.instance_row data i))
  in
  let weights = Array.init n (fun i -> Device_data.weight data i) in
  Metrics.wtally ~truth ~verdicts ~weights

let prediction_error model data ~kept ~dropped =
  let n = Device_data.n_instances data in
  if n = 0 then 0.0
  else begin
    let wrong = ref 0 in
    for i = 0 to n - 1 do
      let truth =
        if Device_data.passes_subset data ~instance:i ~subset:dropped then 1
        else -1
      in
      let features = Device_data.normalized_row data ~instance:i ~keep:kept in
      if model features <> truth then incr wrong
    done;
    float_of_int !wrong /. float_of_int n
  end

type step = {
  spec_index : int;
  accepted : bool;
  error : float;
  counts : Metrics.counts option;
}

type result = {
  flow : flow;
  steps : step list;
  config : config;
}

let eliminate config ~train ~test ~dropped =
  let flow = make_flow config train ~dropped in
  (evaluate_flow flow test, flow)

(* Canonical byte string covering everything a greedy decision can
   depend on: the config, the examination order, and both populations
   (under [On_test_data] the accept/reject decisions read the test
   data, so it must bind the journal too). *)
let journal_fingerprint config ~train ~test ~order =
  let b = Buffer.create 8192 in
  let adds s =
    Buffer.add_string b s;
    Buffer.add_char b ' '
  in
  let addf v = adds (Printf.sprintf "%.17g" v) in
  let addi i = adds (string_of_int i) in
  (match config.learner with
   | Epsilon_svr { c; epsilon; gamma } ->
     adds "svr";
     addf c;
     addf epsilon;
     (match gamma with None -> adds "auto" | Some g -> addf g)
   | C_svc { c; gamma } ->
     adds "svc";
     addf c;
     (match gamma with None -> adds "auto" | Some g -> addf g)
   | Mlp m ->
     adds "mlp";
     addi m.Stc_learn.Mlp.hidden;
     addi m.Stc_learn.Mlp.epochs;
     addf m.Stc_learn.Mlp.rate;
     addf m.Stc_learn.Mlp.momentum;
     addi m.Stc_learn.Mlp.seed);
  addf config.tolerance;
  addf config.guard_fraction;
  (match config.grid with
   | None -> adds "nogrid"
   | Some g ->
     adds "grid";
     addi g.Grid_compact.resolution;
     addf g.Grid_compact.clip_lo;
     addf g.Grid_compact.clip_hi);
  adds (if config.measured_guard then "mg1" else "mg0");
  adds
    (match config.validation with
     | On_test_data -> "vtest"
     | On_train_data -> "vtrain");
  adds "order";
  Array.iter addi order;
  let add_population data =
    Array.iter
      (fun (s : Spec.t) ->
        adds s.Spec.name;
        adds s.Spec.unit_label;
        addf s.Spec.nominal;
        addf s.Spec.range.Spec.lower;
        addf s.Spec.range.Spec.upper)
      (Device_data.specs data);
    Array.iter (Array.iter addf) (Device_data.values data)
  in
  adds "train";
  add_population train;
  adds "test";
  add_population test;
  Journal.fingerprint_hex (Buffer.contents b)

let greedy_resumable ?(order = Order.By_failure_count) ?(eval_each = false)
    ?journal ?(replay = [||]) config ~train ~test =
  let k = Device_data.n_specs train in
  let examination = Order.compute order train in
  if Array.length replay > Array.length examination then
    invalid_arg
      (Printf.sprintf
         "Compaction.greedy_resumable: journal has %d steps but this run \
          examines only %d specs"
         (Array.length replay) (Array.length examination));
  let journal_write what = function
    | Ok () -> ()
    | Error e ->
      failwith (Printf.sprintf "Compaction.greedy_resumable: %s: %s" what e)
  in
  (* Warm-start state for the per-candidate nominal solves only:
     successive candidates share most of their feature set, so SMO is
     seeded from the last *accepted* model's alphas (a rejected
     candidate's state is rolled back below — its problem differs from
     every later candidate's by two label flips instead of one). The
     final flow's models ([make_flow] below, and every guard-band
     pair) always train cold, so the persisted flow bytes depend only
     on the accept/reject decisions — which the equivalence suite pins
     to be warm/cold-identical. *)
  let warm =
    if config.warm_start then Learner.warm_state config.learner else None
  in
  let dropped = ref [] in
  let steps = ref [] in
  Array.iteri
    (fun i candidate ->
      let accepted, error =
        if i < Array.length replay then begin
          (* journaled decision: skip the training entirely *)
          let e = replay.(i) in
          if e.Journal.spec_index <> candidate then
            invalid_arg
              (Printf.sprintf
                 "Compaction.greedy_resumable: journal step %d examined spec \
                  %d but this run examines spec %d (order or data mismatch)"
                 i e.Journal.spec_index candidate);
          Obs.Counter.incr m_replayed;
          (e.Journal.accepted, e.Journal.error)
        end
        else
          Trace.with_span
            (Printf.sprintf "compaction.candidate.%d" candidate)
            (fun () ->
              let trial = Array.of_list (List.rev (candidate :: !dropped)) in
              let kept = complement ~k trial in
              let warm_before = Option.map Learner.checkpoint warm in
              let nominal =
                Trace.with_span "compaction.train" (fun () ->
                    Obs.Histogram.time h_train (fun () ->
                        let features = Device_data.features train ~keep:kept in
                        let labels =
                          dropped_labels train ~dropped:trial ~fraction:0.0
                        in
                        let features', labels' =
                          maybe_grid config features labels
                        in
                        let model =
                          train_classifier ?warm config.learner features'
                            labels'
                        in
                        Guard_band.predict model))
              in
              let validation_data =
                match config.validation with
                | On_test_data -> test
                | On_train_data -> train
              in
              let error =
                Trace.with_span "compaction.validate" (fun () ->
                    Obs.Histogram.time h_validate (fun () ->
                        prediction_error nominal validation_data ~kept
                          ~dropped:trial))
              in
              let accepted = error <= config.tolerance in
              (* rejected candidates don't advance the warm state *)
              if not accepted then
                (match (warm, warm_before) with
                | Some w, Some s -> Learner.rollback w s
                | _ -> ());
              Obs.Counter.incr m_candidates;
              Obs.Counter.incr (if accepted then m_accepted else m_rejected);
              Obs.Gauge.set g_last_error error;
              (* zero-length marker so the decision is visible in the
                 trace itself, nested under this candidate's span *)
              Trace.with_span
                (if accepted then "compaction.accept" else "compaction.reject")
                (fun () -> ());
              (match journal with
               | None -> ()
               | Some w ->
                 journal_write "journal append"
                   (Journal.append w
                      { Journal.spec_index = candidate; accepted; error }));
              (accepted, error))
      in
      if accepted then dropped := candidate :: !dropped;
      let counts =
        if accepted && eval_each then begin
          let c, _ =
            eliminate config ~train ~test
              ~dropped:(Array.of_list (List.rev !dropped))
          in
          Some c
        end
        else None
      in
      steps := { spec_index = candidate; accepted; error; counts } :: !steps)
    examination;
  (match journal with
   | None -> ()
   | Some w -> journal_write "journal finish" (Journal.finish w));
  let final_dropped = Array.of_list (List.rev !dropped) in
  let flow =
    Trace.with_span "compaction.final_flow" (fun () ->
        make_flow config train ~dropped:final_dropped)
  in
  { flow; steps = List.rev !steps; config }

let greedy ?order ?eval_each config ~train ~test =
  greedy_resumable ?order ?eval_each config ~train ~test
