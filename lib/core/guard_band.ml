type verdict = Good | Bad | Guard

type classifier = float array -> int

(* A ±1 predictor together with (when available) the trained model data
   behind it, so a flow can be serialised and shipped to the floor. *)
type model =
  | Constant of int
  | Svr of Stc_svm.Svr.model
  | Svc of Stc_svm.Svc.model
  | Mlp of Stc_learn.Mlp.model
  | Opaque of classifier

type t = {
  tight : model;
  loose : model;
}

let constant c =
  if c <> 1 && c <> -1 then invalid_arg "Guard_band.constant: label must be +/-1";
  Constant c

let predict m =
  match m with
  | Constant c -> fun _ -> c
  | Svr svr -> Stc_svm.Svr.classify svr
  | Svc svc -> Stc_svm.Svc.predict svc
  | Mlp mlp -> Stc_learn.Mlp.classify mlp
  | Opaque f -> f

let of_models ~tight ~loose = { tight; loose }

let make ~tight ~loose = { tight = Opaque tight; loose = Opaque loose }

let single_model m = { tight = m; loose = m }

let single c = single_model (Opaque c)

let tight_model t = t.tight
let loose_model t = t.loose

let is_single t = t.tight == t.loose

let classify t features =
  let pt = predict t.tight features and pl = predict t.loose features in
  match (pt, pl) with
  | 1, 1 -> Good
  | -1, -1 -> Bad
  | 1, -1 | -1, 1 -> Guard
  | _ -> invalid_arg "Guard_band.classify: classifier returned non-±1"

let verdict_to_string = function
  | Good -> "good"
  | Bad -> "bad"
  | Guard -> "guard"

let equal_verdict a b =
  match (a, b) with
  | Good, Good | Bad, Bad | Guard, Guard -> true
  | (Good | Bad | Guard), (Good | Bad | Guard) -> false
