module Svr = Stc_svm.Svr
module Svc = Stc_svm.Svc
module Kernel = Stc_svm.Kernel
module Mlp = Stc_learn.Mlp

type spec =
  | Epsilon_svr of { c : float; epsilon : float; gamma : float option }
  | C_svc of { c : float; gamma : float option }
  | Mlp of Mlp.config

let name = function
  | Epsilon_svr _ -> "svr"
  | C_svc _ -> "svc"
  | Mlp _ -> "mlp"

let default_svr = Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = None }
let default_mlp = Mlp Stc_learn.Mlp.default_config

type warm = Svr_warm of Svr.warm
type snapshot = Svr_snapshot of Svr.snapshot

let warm_state = function
  | Epsilon_svr _ -> Some (Svr_warm (Svr.warm_state ()))
  | C_svc _ | Mlp _ -> None

let checkpoint (Svr_warm w) = Svr_snapshot (Svr.warm_checkpoint w)
let rollback (Svr_warm w) (Svr_snapshot s) = Svr.warm_rollback w s

let resolve_gamma gamma features =
  match gamma with Some g -> g | None -> Kernel.median_gamma features

let train ?warm spec ~features ~labels =
  let n = Array.length labels in
  assert (n > 0);
  let all_same =
    let first = labels.(0) in
    Array.for_all (fun l -> l = first) labels
  in
  if all_same then Guard_band.constant labels.(0)
  else begin
    match spec with
    | Epsilon_svr { c; epsilon; gamma } ->
      let kernel = Kernel.rbf (resolve_gamma gamma features) in
      let y = Array.map float_of_int labels in
      let warm = Option.map (fun (Svr_warm w) -> w) warm in
      Guard_band.Svr (Svr.train ~c ~epsilon ~kernel ?warm ~x:features ~y ())
    | C_svc { c; gamma } ->
      (* no warm start for C-SVC: the labels enter the dual's equality
         constraint, so a previous solution is not feasible for the
         next candidate's problem *)
      let kernel = Kernel.rbf (resolve_gamma gamma features) in
      Guard_band.Svc (Svc.train ~c ~kernel ~x:features ~y:labels ())
    | Mlp config ->
      (* same ±1-target convention as the SVR path; the MLP classifies
         by the sign of its regression output *)
      let y = Array.map float_of_int labels in
      Guard_band.Mlp (Mlp.train ~config ~x:features ~y ())
  end

let predict = Guard_band.predict
let save = Model_text.to_text

let load text =
  let open Textio in
  let cur = cursor_of_string text in
  let* m = Model_text.parse cur in
  if not (at_end cur) then fail cur "trailing content after model" else Ok m
