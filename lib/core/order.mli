(** Test-examination orderings for the greedy compaction loop
    (Sec. 3.2 discusses three strategies; the solution quality of the
    greedy procedure depends on this order). *)

type strategy =
  | Given of int array
      (** explicit order from device-functionality analysis (the
          paper's choice) *)
  | By_failure_count
      (** examine specs that reject the fewest training instances
          first — they are the cheapest to make implicit *)
  | By_correlation
      (** examine specs most correlated with some other spec first —
          their information is most available elsewhere *)
  | By_cluster of float
      (** single-linkage clustering of specs whose |correlation|
          exceeds the threshold; within each multi-member cluster every
          spec except a representative (the one rejecting the most
          devices, i.e. the most informative) is examined first, so the
          cluster's information survives in the representative *)
  | By_mutual_information
      (** learned drop order (the arXiv 2010.15240 direction): examine
          specs carrying the least histogram mutual information about
          the overall pass/fail verdict first ({!Stc_learn.Mi}) — their
          outcome is the most predictable from the rest *)

val compute : strategy -> Device_data.t -> int array
(** Returns a permutation of the spec indices. Raises
    [Invalid_argument] if a [Given] order is not a permutation. *)

val failure_counts : Device_data.t -> int array
(** Per-spec count of training instances that violate that spec. *)

val correlation_matrix : Device_data.t -> float array array
(** |Pearson correlation| between normalised spec columns. *)

val clusters : Device_data.t -> threshold:float -> int list list
(** Single-linkage clusters under |correlation| ≥ threshold, each
    sorted ascending, largest cluster first. *)

val mutual_information : ?bins:int -> Device_data.t -> float array
(** Per-spec {!Stc_learn.Mi} score (nats) between the normalised spec
    column and the overall pass/fail verdict; zeros on an empty
    population. [bins] defaults to {!Stc_learn.Mi.default_bins}. *)
