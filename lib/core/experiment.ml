module Variation = Stc_process.Variation
module Montecarlo = Stc_process.Montecarlo
module Opamp = Stc_circuit.Opamp
module Measure_opamp = Stc_circuit.Measure_opamp
module Geometry = Stc_mems.Geometry
module Beam = Stc_mems.Beam
module Measure_mems = Stc_mems.Measure_mems

(* ------------------------------------------------------------------ *)
(* Operational amplifier                                               *)
(* ------------------------------------------------------------------ *)

let spec = Spec.make

let opamp_specs =
  [|
    spec ~name:"gain" ~unit_label:"-" ~nominal:14000.0 ~lower:1000.0
      ~upper:20000.0;
    spec ~name:"3-dB bandwidth" ~unit_label:"Hz" ~nominal:200.0 ~lower:130.0
      ~upper:10000.0;
    spec ~name:"unity gain frequency" ~unit_label:"MHz" ~nominal:2.1 ~lower:1.7
      ~upper:5.0;
    spec ~name:"slew rate" ~unit_label:"V/us" ~nominal:0.44 ~lower:0.35
      ~upper:0.55;
    spec ~name:"rise time" ~unit_label:"us" ~nominal:8.5 ~lower:0.01
      ~upper:10.5;
    spec ~name:"overshoot" ~unit_label:"-" ~nominal:0.0001 ~lower:(-0.00026)
      ~upper:0.00026;
    spec ~name:"settling time" ~unit_label:"ns" ~nominal:895.0 ~lower:1.0
      ~upper:1070.0;
    spec ~name:"quiescent current" ~unit_label:"uA" ~nominal:105.0 ~lower:70.0
      ~upper:125.0;
    spec ~name:"common mode gain" ~unit_label:"-" ~nominal:0.08 ~lower:0.0
      ~upper:0.48;
    spec ~name:"power supply gain" ~unit_label:"-" ~nominal:0.4 ~lower:0.0
      ~upper:0.95;
    spec ~name:"short circuit current" ~unit_label:"mA" ~nominal:0.5 ~lower:0.0
      ~upper:4.2;
  |]

let opamp_params_of_draw v =
  let n = Opamp.nominal in
  {
    n with
    Opamp.w1 = v.(0); l1 = v.(1);
    w3 = v.(2); l3 = v.(3);
    w5 = v.(4); l5 = v.(5);
    w6 = v.(6); l6 = v.(7);
    w7 = v.(8); l7 = v.(9);
    w8 = v.(10); l8 = v.(11);
    cc = v.(12);
    cl = v.(13);
  }

let opamp_variations =
  let n = Opamp.nominal in
  let u name value = Variation.uniform_pct name value ~pct:0.10 in
  [|
    u "w1" n.Opamp.w1; u "l1" n.Opamp.l1;
    u "w3" n.Opamp.w3; u "l3" n.Opamp.l3;
    u "w5" n.Opamp.w5; u "l5" n.Opamp.l5;
    u "w6" n.Opamp.w6; u "l6" n.Opamp.l6;
    u "w7" n.Opamp.w7; u "l7" n.Opamp.l7;
    u "w8" n.Opamp.w8; u "l8" n.Opamp.l8;
    u "cc" n.Opamp.cc; u "cl" n.Opamp.cl;
  |]

(* Calibration factors fitted once against the simulated nominal device
   (see Calibration and DESIGN.md). *)
let opamp_calibrations =
  lazy
    (let measured = Measure_opamp.to_array (Measure_opamp.measure Opamp.nominal) in
     Array.init (Array.length opamp_specs) (fun i ->
         Calibration.fit Calibration.Scale ~measured_nominal:measured.(i)
           ~target_nominal:opamp_specs.(i).Spec.nominal))

let opamp_device ?(calibrate = true) () =
  let simulate draw =
    match Measure_opamp.measure (opamp_params_of_draw draw) with
    | values ->
      let raw = Measure_opamp.to_array values in
      if calibrate then
        Some (Calibration.apply_all (Lazy.force opamp_calibrations) raw)
      else Some raw
    | exception Measure_opamp.Measurement_failed _ -> None
  in
  {
    Montecarlo.device_name = "two-stage op-amp";
    params = opamp_variations;
    spec_count = Array.length opamp_specs;
    simulate;
  }

(* Functional-analysis order: specs whose information is most available
   from others first (bandwidth = ugf/gain; rise/settling/overshoot are
   all shaped by the same closed-loop dynamics; short-circuit drive
   tracks the output-stage sizing that quiescent current also sees). *)
let opamp_examination_order = [| 1; 4; 6; 5; 10; 8; 9; 0; 2; 3; 7 |]

let generate_datasets ?(parallel = false) device specs ~seed ~n_train ~n_test =
  let all =
    if parallel then
      Montecarlo.generate_parallel ~seed device ~n:(n_train + n_test)
    else
      Montecarlo.generate (Stc_numerics.Rng.create seed) device
        ~n:(n_train + n_test)
  in
  let train_mc, test_mc = Montecarlo.split all ~at:n_train in
  ( Device_data.of_montecarlo ~specs train_mc,
    Device_data.of_montecarlo ~specs test_mc )

let generate_opamp ?calibrate ?parallel ~seed ~n_train ~n_test () =
  generate_datasets ?parallel (opamp_device ?calibrate ()) opamp_specs ~seed
    ~n_train ~n_test

(* ------------------------------------------------------------------ *)
(* Boundary-biased enrichment                                          *)
(* ------------------------------------------------------------------ *)

let spec_limits specs =
  Array.map (fun s -> (s.Spec.range.Spec.lower, s.Spec.range.Spec.upper)) specs

(* The uniform test population must not share (seed, index) streams
   with the enriched training population — a fixed odd offset derives
   an independent stream family while staying reproducible per seed. *)
let test_seed_offset = 0x2545F491

let generate_enriched ?config ?domains device specs ~seed ~pilot ~n_train
    ~n_test =
  let limits = spec_limits specs in
  let train_mc, stats =
    Stc_process.Enrich.generate ?config ?domains ~seed ~pilot device ~limits
      ~n:n_train
  in
  let test_mc =
    Montecarlo.generate_parallel ?domains ~seed:(seed + test_seed_offset)
      device ~n:n_test
  in
  ( Device_data.of_montecarlo ~specs train_mc,
    Device_data.of_montecarlo ~specs test_mc,
    stats )

let generate_opamp_enriched ?calibrate ?config ?domains ~seed ~pilot ~n_train
    ~n_test () =
  generate_enriched ?config ?domains (opamp_device ?calibrate ()) opamp_specs
    ~seed ~pilot ~n_train ~n_test

(* ------------------------------------------------------------------ *)
(* MEMS accelerometer                                                  *)
(* ------------------------------------------------------------------ *)

let mems_room_specs =
  [|
    spec ~name:"scale factor" ~unit_label:"mV/V" ~nominal:9.5 ~lower:5.0
      ~upper:30.0;
    spec ~name:"cross-axis sensitivity" ~unit_label:"mV/V" ~nominal:0.0
      ~lower:(-6.0) ~upper:4.0;
    spec ~name:"peak frequency" ~unit_label:"kHz" ~nominal:5.6 ~lower:4.0
      ~upper:6.2;
    spec ~name:"quality factor" ~unit_label:"-" ~nominal:2.1 ~lower:1.0
      ~upper:2.8;
    spec ~name:"3-dB bandwidth" ~unit_label:"kHz" ~nominal:2.7 ~lower:2.0
      ~upper:3.8;
  |]

let with_suffix suffix s = { s with Spec.name = s.Spec.name ^ " " ^ suffix }

let mems_specs =
  Array.concat
    [
      Array.map (with_suffix "@room") mems_room_specs;
      Array.map (with_suffix "@-40C") mems_room_specs;
      Array.map (with_suffix "@80C") mems_room_specs;
    ]

let mems_cold_indices = Array.init 5 (fun i -> 5 + i)

let mems_hot_indices = Array.init 5 (fun i -> 10 + i)

let mems_variations =
  let g = Geometry.nominal in
  let u name value = Variation.uniform_pct name value ~pct:0.10 in
  let springs =
    Array.to_list g.Geometry.springs
    |> List.mapi (fun i s ->
           (* the varied "relative angle" is the skew from the ideal
              orientation, not the ±90° orientation itself *)
           let skew = s.Geometry.angle -. Geometry.ideal_angles.(i) in
           [
             u (Printf.sprintf "spring%d.length" i) s.Geometry.beam.Beam.length;
             u (Printf.sprintf "spring%d.width" i) s.Geometry.beam.Beam.width;
             u (Printf.sprintf "spring%d.skew" i) skew;
           ])
    |> List.concat
  in
  Array.of_list
    (springs
     @ [
         u "plate.length" g.Geometry.plate_length;
         u "plate.width" g.Geometry.plate_width;
         u "finger.gap" g.Geometry.finger_gap;
         u "finger.overlap" g.Geometry.finger_overlap;
         u "film.thickness" g.Geometry.thickness;
       ])

let mems_geometry_of_draw v =
  let g = Geometry.nominal in
  let thickness = v.(16) in
  let springs =
    Array.init 4 (fun i ->
        {
          Geometry.beam =
            {
              Beam.length = v.((3 * i) + 0);
              width = v.((3 * i) + 1);
              thickness;
            };
          angle = Geometry.ideal_angles.(i) +. v.((3 * i) + 2);
        })
  in
  {
    g with
    Geometry.springs = springs;
    plate_length = v.(12);
    plate_width = v.(13);
    finger_gap = v.(14);
    finger_overlap = v.(15);
    thickness;
  }

let mems_measure geometry =
  let room, cold, hot = Measure_mems.tri_temperature geometry in
  Array.concat
    [
      Measure_mems.to_array room;
      Measure_mems.to_array cold;
      Measure_mems.to_array hot;
    ]

let mems_calibrations =
  lazy
    (let measured = mems_measure Geometry.nominal in
     Array.init (Array.length mems_specs) (fun i ->
         Calibration.fit Calibration.Scale ~measured_nominal:measured.(i)
           ~target_nominal:mems_specs.(i).Spec.nominal))

let mems_device ?(calibrate = true) () =
  let simulate draw =
    match mems_measure (mems_geometry_of_draw draw) with
    | raw ->
      if calibrate then
        Some (Calibration.apply_all (Lazy.force mems_calibrations) raw)
      else Some raw
    | exception Measure_mems.Measurement_failed _ -> None
  in
  {
    Montecarlo.device_name = "MEMS accelerometer";
    params = mems_variations;
    spec_count = Array.length mems_specs;
    simulate;
  }

let generate_mems ?calibrate ?parallel ~seed ~n_train ~n_test () =
  generate_datasets ?parallel (mems_device ?calibrate ()) mems_specs ~seed
    ~n_train ~n_test

(* ------------------------------------------------------------------ *)
(* Default configurations                                              *)
(* ------------------------------------------------------------------ *)

let opamp_config = { Compaction.default_config with guard_fraction = 0.01 }

(* Guard from model disagreement only (Table 3 semantics: the guard
   fraction grows with the number of eliminated temperature tests),
   with the paper's own ±2.5 % boundary perturbation. *)
let mems_config =
  {
    Compaction.default_config with
    guard_fraction = 0.025;
    measured_guard = false;
  }
