(** Outcome accounting, with the paper's Sec. 5.1 definitions:
    yield loss = good devices the flow binned bad, defect escape = bad
    devices binned good, guard = devices sent to full (adaptive) test.
    Percentages are over all tested devices, matching Table 3. *)

type counts = {
  total : int;
  truth_good : int;
  truth_bad : int;
  escapes : int;       (** truth bad, binned Good *)
  losses : int;        (** truth good, binned Bad *)
  guards : int;        (** binned Guard *)
  correct_good : int;  (** truth good, binned Good *)
  correct_bad : int;   (** truth bad, binned Bad *)
}

val empty : counts

val record : counts -> truth_good:bool -> Guard_band.verdict -> counts

val tally : truth:bool array -> verdicts:Guard_band.verdict array -> counts

val escape_pct : counts -> float
val loss_pct : counts -> float
val guard_pct : counts -> float
val yield_pct : counts -> float
(** Truth yield of the population. *)

val prediction_error_pct : counts -> float
(** (escapes + losses) / total · 100. *)

val pp : Format.formatter -> counts -> unit

(** {1 Importance-weighted accounting}

    The same tallies, but each device contributes its importance
    weight instead of 1. For a boundary-enriched population whose
    weights were produced by [Stc_process.Enrich], the resulting
    percentages are self-normalised importance estimates of the
    uniform-population percentages. For unit weights they reduce
    exactly to the integer tallies. *)

type wcounts = {
  w_total : float;
  w_truth_good : float;
  w_truth_bad : float;
  w_escapes : float;
  w_losses : float;
  w_guards : float;
  w_correct_good : float;
  w_correct_bad : float;
}

val wempty : wcounts

val wrecord :
  wcounts -> truth_good:bool -> weight:float -> Guard_band.verdict -> wcounts
(** Raises [Invalid_argument] on negative or non-finite weights. *)

val wtally :
  truth:bool array ->
  verdicts:Guard_band.verdict array ->
  weights:float array ->
  wcounts

val wescape_pct : wcounts -> float
val wloss_pct : wcounts -> float
val wguard_pct : wcounts -> float
val wyield_pct : wcounts -> float
val wprediction_error_pct : wcounts -> float

val of_counts : counts -> wcounts
(** Integer tallies viewed as unit-weight tallies. *)

val wpp : Format.formatter -> wcounts -> unit
