module Model_io = Stc_svm.Model_io

open Textio

let to_text (m : Guard_band.model) =
  match m with
  | Guard_band.Constant c -> Ok (Printf.sprintf "model constant %d\n" c)
  | Guard_band.Svr svr ->
    let body = Model_io.svr_to_string svr in
    Ok (Printf.sprintf "model svr %d\n%s" (count_lines body) body)
  | Guard_band.Svc svc ->
    let body = Model_io.svc_to_string svc in
    Ok (Printf.sprintf "model svc %d\n%s" (count_lines body) body)
  | Guard_band.Opaque _ ->
    Error
      "band holds an opaque classifier (lookup table or adaptive-guard \
       margin); only Constant/Svr/Svc models serialise"

let parse cur =
  let* line = next_line cur in
  match String.split_on_char ' ' line with
  | [ "model"; "constant"; c ] ->
    let* c = parse_int cur "constant label" c in
    if c <> 1 && c <> -1 then fail cur "constant label must be +/-1"
    else Ok (Guard_band.Constant c)
  | [ "model"; ("svr" | "svc") as family; nlines ] ->
    let* nlines = parse_int cur "model line count" nlines in
    if nlines < 0 then fail cur "negative model line count"
    else
      let* body_lines = take_lines cur nlines in
      let body = String.concat "\n" body_lines ^ "\n" in
      if family = "svr" then begin
        match Model_io.svr_of_string body with
        | Ok m -> Ok (Guard_band.Svr m)
        | Error e -> fail cur ("embedded svr: " ^ e)
      end
      else begin
        match Model_io.svc_of_string body with
        | Ok m -> Ok (Guard_band.Svc m)
        | Error e -> fail cur ("embedded svc: " ^ e)
      end
  | _ -> fail cur "malformed model line"
