module Model_io = Stc_svm.Model_io

open Textio

let all_families = [ "constant"; "svr"; "svc"; "mlp" ]
let legacy_families = [ "constant"; "svr"; "svc" ]

(* First body line each serialised family must start with. The header's
   family token and the body's own tag are redundant on a well-formed
   file; checking them against each other up front turns a
   wrong-family payload (e.g. SVR text under a "model mlp" header)
   into a line-numbered error at the tag line instead of a confusing
   parse failure deep inside the wrong family's reader. *)
let body_tag = function
  | "svr" -> "stc-svr-1"
  | "svc" -> "stc-svc-1"
  | "mlp" -> "stc-mlp-1"
  | f -> invalid_arg ("Model_text.body_tag: unknown family " ^ f)

let to_text (m : Guard_band.model) =
  match m with
  | Guard_band.Constant c -> Ok (Printf.sprintf "model constant %d\n" c)
  | Guard_band.Svr svr ->
    let body = Model_io.svr_to_string svr in
    Ok (Printf.sprintf "model svr %d\n%s" (count_lines body) body)
  | Guard_band.Svc svc ->
    let body = Model_io.svc_to_string svc in
    Ok (Printf.sprintf "model svc %d\n%s" (count_lines body) body)
  | Guard_band.Mlp mlp ->
    let body = Stc_learn.Mlp.to_string mlp in
    Ok (Printf.sprintf "model mlp %d\n%s" (count_lines body) body)
  | Guard_band.Opaque _ ->
    Error
      "band holds an opaque classifier (lookup table or adaptive-guard \
       margin); only Constant/Svr/Svc/Mlp models serialise"

let parse ?(families = all_families) cur =
  let allowed f = List.mem f families in
  let* line = next_line cur in
  match String.split_on_char ' ' line with
  | [ "model"; "constant"; c ] ->
    if not (allowed "constant") then
      fail cur "model family \"constant\" not allowed in this container"
    else
      let* c = parse_int cur "constant label" c in
      if c <> 1 && c <> -1 then fail cur "constant label must be +/-1"
      else Ok (Guard_band.Constant c)
  | [ "model"; ("svr" | "svc" | "mlp") as family; nlines ] ->
    if not (allowed family) then
      fail cur
        (Printf.sprintf
           "model family %S not allowed in this container (needs a newer \
            format version)"
           family)
    else
      let* nlines = parse_int cur "model line count" nlines in
      if nlines < 0 then fail cur "negative model line count"
      else if nlines = 0 then
        fail cur
          (Printf.sprintf "embedded %s body is empty (missing %S tag)" family
             (body_tag family))
      else
        (* Check the body's own tag on its first line before reading the
           rest, so a family mismatch fails fast at this line. *)
        let* first = next_line cur in
        let expected = body_tag family in
        if first <> expected then
          fail cur
            (Printf.sprintf
               "embedded %s body starts with %S, expected %S (model family \
                mismatch)"
               family first expected)
        else
          let* rest = take_lines cur (nlines - 1) in
          let body = String.concat "\n" (first :: rest) ^ "\n" in
          (match family with
           | "svr" -> begin
               match Model_io.svr_of_string body with
               | Ok m -> Ok (Guard_band.Svr m)
               | Error e -> fail cur ("embedded svr: " ^ e)
             end
           | "svc" -> begin
               match Model_io.svc_of_string body with
               | Ok m -> Ok (Guard_band.Svc m)
               | Error e -> fail cur ("embedded svc: " ^ e)
             end
           | _ -> begin
               match Stc_learn.Mlp.of_string body with
               | Ok m -> Ok (Guard_band.Mlp m)
               | Error e -> fail cur ("embedded mlp: " ^ e)
             end)
  | _ -> fail cur "malformed model line"
