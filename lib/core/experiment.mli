(** Packaged experiment configurations for the paper's two devices:
    the op-amp (Table 1, Figures 5–6) and the MEMS accelerometer
    (Tables 2–3). Everything is deterministic given a seed. *)

(** {1 Operational amplifier} *)

val opamp_specs : Spec.t array
(** The eleven Table 1 specifications with the paper's nominal values
    and acceptability ranges. *)

val opamp_device : ?calibrate:bool -> unit -> Stc_process.Montecarlo.device
(** ±10 % uniform variation on every MOSFET W and L and both
    capacitors (14 parameters), simulated through the six test benches.
    [calibrate] (default true) maps each measured spec onto the paper's
    nominal scale (see {!Calibration}). *)

val opamp_examination_order : int array
(** Device-functionality examination order (the paper's strategy): the
    specs most entangled with others first. *)

val generate_opamp :
  ?calibrate:bool -> ?parallel:bool -> seed:int -> n_train:int -> n_test:int ->
  unit -> Device_data.t * Device_data.t
(** Monte-Carlo training and test populations (one stream, split).
    [parallel] (default false) fans the simulations out across domains
    via {!Stc_process.Montecarlo.generate_parallel}; the result is
    deterministic per seed but drawn from a different stream than the
    sequential generator. *)

(** {1 Boundary-biased enrichment} *)

val spec_limits : Spec.t array -> (float * float) array
(** The [(lower, upper)] acceptance limits of each spec, in the shape
    {!Stc_process.Enrich.generate} expects. *)

val generate_enriched :
  ?config:Stc_process.Enrich.config ->
  ?domains:int ->
  Stc_process.Montecarlo.device ->
  Spec.t array ->
  seed:int ->
  pilot:int ->
  n_train:int ->
  n_test:int ->
  Device_data.t * Device_data.t * Stc_process.Enrich.stats
(** Boundary-enriched training population (with importance weights
    attached) plus a uniform test population drawn from an independent
    stream family derived from [seed]. Deterministic per seed at any
    domain count. *)

val generate_opamp_enriched :
  ?calibrate:bool ->
  ?config:Stc_process.Enrich.config ->
  ?domains:int ->
  seed:int ->
  pilot:int ->
  n_train:int ->
  n_test:int ->
  unit ->
  Device_data.t * Device_data.t * Stc_process.Enrich.stats
(** {!generate_enriched} on the op-amp device and specs. *)

(** {1 MEMS accelerometer} *)

val mems_room_specs : Spec.t array
(** The five Table 2 specifications (room temperature). *)

val mems_specs : Spec.t array
(** All fifteen: the Table 2 five at room, cold (−40 °C) and hot
    (80 °C), in that block order. *)

val mems_cold_indices : int array
(** Column indices of the cold-temperature specs within {!mems_specs}. *)

val mems_hot_indices : int array

val mems_device : ?calibrate:bool -> unit -> Stc_process.Montecarlo.device
(** ±10 % uniform variation on each spring's length, width and
    orientation angle, the plate dimensions, the comb gap and overlap
    (16 parameters). *)

val generate_mems :
  ?calibrate:bool -> ?parallel:bool -> seed:int -> n_train:int -> n_test:int ->
  unit -> Device_data.t * Device_data.t

(** {1 Defaults} *)

val opamp_config : Compaction.config
(** ε-SVR, tolerance 1 %, guard band ±1 % (the paper's op-amp guard). *)

val mems_config : Compaction.config
(** ε-SVR, tolerance 1 %, guard band ±2.5 % (the paper's MEMS guard). *)
