(** A write-ahead journal for the greedy compaction loop.

    Each candidate examination trains an SVM — the dominant cost of the
    whole procedure — and a crash used to discard all of them. The
    journal records every decided step (spec examined, accept/reject,
    prediction error) to disk, flushed before the loop advances, so a
    killed run resumes by replaying the recorded decisions instead of
    retraining ({!Compaction.greedy_resumable}). The decisions alone
    suffice: every training input is a deterministic function of the
    decisions so far, so a resumed run produces a flow bit-identical to
    an uninterrupted one — the trained models themselves never need to
    be persisted.

    Format [stc-journal-1], line-oriented in the [stc-flow-1] style
    ({!Textio}):
    {v
stc-journal-1
fingerprint <16 hex digits>
step <seq> <spec_index> <accepted 0|1> <error>
...
done <n_steps>
v}
    A journal without its [done] trailer is a valid crash artefact: it
    replays as an incomplete run. A final record cut inside write(2) is
    the other legal crash shape; {!recover} salvages the intact prefix.
    Everything else — mid-file damage, a mutated record — is corruption
    and is rejected with its line number. The [fingerprint] binds the
    journal to one (config, training data, examination order) triple so
    a journal can never silently resume a different run. *)

type entry = {
  spec_index : int;
  accepted : bool;
  error : float;  (** e_p measured for this candidate *)
}

val fingerprint_hex : string -> string
(** 64-bit FNV-1a of a canonical byte string, as 16 hex digits. *)

(* ------------------------------ writing --------------------------- *)

type writer

val create : path:string -> fingerprint:string -> (writer, string) result
(** Truncates [path] and writes the header; every {!append} is flushed
    to the OS before it returns (write-ahead discipline). *)

val open_append : path:string -> fingerprint:string -> (writer, string) result
(** Continues an existing incomplete journal after validating that its
    fingerprint matches. [Error] if the file is corrupt, complete, or
    was written for a different run. *)

val entries_written : writer -> int

val append : writer -> entry -> (unit, string) result
(** Serialises and flushes one step. [Error] if the write fails. *)

val finish : writer -> (unit, string) result
(** Writes the [done] trailer; the journal is then complete and can no
    longer be appended to. *)

val close : writer -> unit
(** Idempotent. A journal closed without {!finish} replays as an
    incomplete run. *)

(* ------------------------------ reading --------------------------- *)

type replay = {
  fingerprint : string;
  entries : entry array;  (** in examination order *)
  complete : bool;        (** the [done] trailer was present *)
}

val of_string : string -> (replay, string) result
(** Strict except for the one crash shape it must tolerate: end of
    input at a record boundary (missing [done]). Every other defect —
    an unterminated final line (a record cut mid-write, even when its
    prefix parses), a bad field, trailing content after [done] — is an
    [Error] carrying the line number. *)

val to_string : replay -> string
(** Canonical text ([of_string] ∘ [to_string] = id; used by the QA
    round-trip law and to build truncated-run artefacts in tests). *)

val load : path:string -> (replay, string) result
(** Reads and parses [path] with the strict {!of_string}. *)

val recover : path:string -> (replay * int, string) result
(** Like {!load}, but salvages the second legal crash artefact: a final
    record cut inside write(2), recognisable as a last line with no
    terminating newline whose removal leaves a strictly valid journal.
    The file is truncated to that intact prefix so {!open_append}
    continues at a record boundary; returns the replay and the number
    of bytes dropped (0 when the journal was already intact). Mid-file
    corruption is still rejected with the strict parser's error. *)
