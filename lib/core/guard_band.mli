(** Guard-banded three-way classification (Sec. 4.2, Fig. 4).

    Two models are trained from acceptability ranges perturbed outward
    (loose) and inward (tight) by the guard fraction. Agreement gives a
    confident Good/Bad; disagreement places the device in the
    guard-band region, to be routed to full test. *)

type verdict = Good | Bad | Guard

type classifier = float array -> int
(** ±1 predictor over a feature vector. *)

(** A ±1 predictor with its trained model data exposed, so guard bands
    built from SVMs can be serialised ({!Stc_floor.Flow_io}) and shipped
    to the production floor. [Opaque] wraps an arbitrary closure (e.g. a
    lookup table or an adaptive-guard margin rule) and cannot be
    serialised. *)
type model =
  | Constant of int           (** degenerate one-class training data *)
  | Svr of Stc_svm.Svr.model  (** the paper's ε-SVM, classified by sign *)
  | Svc of Stc_svm.Svc.model
  | Mlp of Stc_learn.Mlp.model
      (** one-hidden-layer perceptron ({!Stc_learn.Mlp}), classified by
          sign; serialises only in [stc-flow-2] containers *)
  | Opaque of classifier

type t

val constant : int -> model
(** Raises [Invalid_argument] unless the label is ±1. *)

val predict : model -> classifier

val of_models : tight:model -> loose:model -> t

val make : tight:classifier -> loose:classifier -> t
(** Closure-only construction; the resulting band is [Opaque] on both
    sides and cannot be serialised. *)

val single_model : model -> t

val single : classifier -> t
(** Degenerate guard band: both models identical (never yields
    [Guard]); useful for ablations. *)

val tight_model : t -> model
val loose_model : t -> model

val is_single : t -> bool
(** True when both sides are physically the same model (built by
    {!single} / {!single_model}). *)

val classify : t -> float array -> verdict
(** [Good] iff both predict +1, [Bad] iff both predict −1, else
    [Guard]. A device inside the tight range is necessarily inside the
    loose one, so with consistent models the tight prediction +1 and
    loose −1 cannot co-occur; if it does (model noise) the verdict is
    still [Guard]. *)

val verdict_to_string : verdict -> string

val equal_verdict : verdict -> verdict -> bool
