(** Shared machinery for the line-oriented, space-separated text
    formats the system persists ([Stc_floor.Flow_io]'s [stc-flow-1] and
    {!Journal}'s [stc-journal-1]): float printing that round-trips
    bit-for-bit, percent-encoded fields, and a line cursor whose errors
    always carry the 1-based line number.

    Both formats obey the same laws, enforced by the QA suite: parse ∘
    print = id, print ∘ parse = canonicalise, and every rejection is a
    typed [Error] naming the line. *)

val fp : float -> string
(** [%.17g] — prints any finite float so [float_of_string] returns the
    identical bits. *)

val encode_field : string -> string
(** Percent-encodes ['%'], spaces and line breaks so the field is
    space-splittable; the empty string encodes to a lone ["%"] (which
    no non-empty encoding produces). *)

val decode_field : string -> (string, string) result

val count_lines : string -> int
(** Number of ['\n'] characters — the line count of an embedded body
    that ends with a newline. *)

val add_index_line : Buffer.t -> string -> int array -> unit
(** [add_index_line b key indices] appends ["key n i1 .. in\n"]. *)

(* ------------------------------ cursor ---------------------------- *)

type cursor
(** A read cursor over raw lines; no trimming or blank filtering, so
    verbatim embedded bodies survive. *)

val cursor_of_string : string -> cursor
(** Splits on ['\n']; a single trailing empty piece (the final
    newline of a well-formed file) is dropped. *)

val next_line : cursor -> (string, string) result
(** Consumes one line, or an [Error] saying the text is truncated at
    the line that was expected. *)

val at_end : cursor -> bool

val fail : cursor -> string -> ('a, string) result
(** [Error "line N: msg"] for the line most recently consumed. *)

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

val expect_keyword : cursor -> string -> (string, string) result
(** Consumes ["key rest"] and returns [rest]. *)

val parse_float : cursor -> string -> string -> (float, string) result
(** Rejects non-finite values: a persisted NaN/inf can only be
    corruption, so it must not poison later arithmetic. *)

val parse_int : cursor -> string -> string -> (int, string) result

val parse_index_line :
  cursor -> string -> string -> (int array, string) result
(** Parses a line produced by {!add_index_line} (the line itself is
    passed, already consumed, so callers can branch on its key). *)

val take_lines : cursor -> int -> (string list, string) result
