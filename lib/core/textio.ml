let fp = Printf.sprintf "%.17g"

(* Field values may contain spaces; fields are percent-encoded so every
   line stays space-splittable. The empty string encodes to a lone "%",
   which no non-empty encoding produces (a literal '%' is always
   "%25"). *)
let encode_field s =
  if s = "" then "%"
  else begin
    let buffer = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '%' | ' ' | '\t' | '\n' | '\r' ->
          Buffer.add_string buffer (Printf.sprintf "%%%02X" (Char.code c))
        | c -> Buffer.add_char buffer c)
      s;
    Buffer.contents buffer
  end

let decode_field s =
  if s = "%" then Ok ""
  else begin
    let len = String.length s in
    let buffer = Buffer.create len in
    let rec go i =
      if i >= len then Ok (Buffer.contents buffer)
      else if s.[i] = '%' then begin
        if i + 2 >= len then Error "truncated percent escape"
        else begin
          match int_of_string_opt (Printf.sprintf "0x%c%c" s.[i + 1] s.[i + 2]) with
          | Some code ->
            Buffer.add_char buffer (Char.chr code);
            go (i + 3)
          | None -> Error "bad percent escape"
        end
      end
      else begin
        Buffer.add_char buffer s.[i];
        go (i + 1)
      end
    in
    go 0
  end

let count_lines text =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) text;
  !n

let add_index_line buffer key indices =
  Buffer.add_string buffer key;
  Buffer.add_char buffer ' ';
  Buffer.add_string buffer (string_of_int (Array.length indices));
  Array.iter
    (fun i ->
      Buffer.add_char buffer ' ';
      Buffer.add_string buffer (string_of_int i))
    indices;
  Buffer.add_char buffer '\n'

(* ------------------------------ cursor ---------------------------- *)

type cursor = {
  mutable lines : string list;
  mutable lineno : int;
}

let cursor_of_string text =
  let lines = String.split_on_char '\n' text in
  (* a well-formed file ends with a newline: drop the final empty piece *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  { lines; lineno = 0 }

let next_line cur =
  match cur.lines with
  | [] ->
    Error
      (Printf.sprintf "line %d: text is truncated (unexpected end of input)"
         (cur.lineno + 1))
  | line :: rest ->
    cur.lines <- rest;
    cur.lineno <- cur.lineno + 1;
    Ok line

let at_end cur = cur.lines = []

let fail cur msg = Error (Printf.sprintf "line %d: %s" cur.lineno msg)

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let expect_keyword cur key =
  let* line = next_line cur in
  match String.index_opt line ' ' with
  | Some i when String.sub line 0 i = key ->
    Ok (String.sub line (i + 1) (String.length line - i - 1))
  | Some _ | None -> fail cur (Printf.sprintf "expected %S header" key)

(* [float_of_string] happily parses "nan" and "inf"; a persisted
   non-finite float can only be a corrupted file, so reject it here
   rather than letting it poison every later computation. *)
let parse_float cur what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Ok v
  | Some _ -> fail cur (Printf.sprintf "non-finite %s %S" what s)
  | None -> fail cur (Printf.sprintf "bad %s %S" what s)

let parse_int cur what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> fail cur (Printf.sprintf "bad %s %S" what s)

let parse_index_line cur key line =
  match String.split_on_char ' ' line with
  | k :: count :: rest when k = key ->
    let* count = parse_int cur "count" count in
    if List.length rest <> count then fail cur (key ^ " count mismatch")
    else begin
      let parsed = List.map int_of_string_opt rest in
      if List.exists (fun v -> v = None) parsed then
        fail cur ("bad index in " ^ key)
      else Ok (Array.of_list (List.map Option.get parsed))
    end
  | _ -> fail cur (Printf.sprintf "expected %S line" key)

let take_lines cur n =
  let rec go n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* line = next_line cur in
      go (n - 1) (line :: acc)
  in
  go n []
