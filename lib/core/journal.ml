open Textio

let version = "stc-journal-1"

type entry = {
  spec_index : int;
  accepted : bool;
  error : float;
}

(* 64-bit FNV-1a; Int64 so the wrap-around is well defined on every
   word size. *)
let fingerprint_hex s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* ------------------------------ writing --------------------------- *)

type writer = {
  oc : out_channel;
  mutable count : int;
  mutable finished : bool;
  mutable closed : bool;
}

let entry_to_text ~seq e =
  Printf.sprintf "step %d %d %d %s\n" seq e.spec_index
    (if e.accepted then 1 else 0)
    (fp e.error)

let header_text ~fingerprint =
  Printf.sprintf "%s\nfingerprint %s\n" version fingerprint

let create ~path ~fingerprint =
  try
    let oc = open_out_bin path in
    output_string oc (header_text ~fingerprint);
    flush oc;
    Ok { oc; count = 0; finished = false; closed = false }
  with Sys_error e -> Error e

let entries_written w = w.count

let append w e =
  if w.closed then Error "Journal.append: writer is closed"
  else if w.finished then Error "Journal.append: journal is already complete"
  else begin
    try
      output_string w.oc (entry_to_text ~seq:w.count e);
      flush w.oc;
      w.count <- w.count + 1;
      Ok ()
    with Sys_error e -> Error e
  end

let finish w =
  if w.closed then Error "Journal.finish: writer is closed"
  else if w.finished then Error "Journal.finish: already finished"
  else begin
    try
      output_string w.oc (Printf.sprintf "done %d\n" w.count);
      flush w.oc;
      w.finished <- true;
      Ok ()
    with Sys_error e -> Error e
  end

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out_noerr w.oc
  end

(* ------------------------------ reading --------------------------- *)

type replay = {
  fingerprint : string;
  entries : entry array;
  complete : bool;
}

let of_string text =
  (* a record is one line flushed whole, so a canonical journal always
     ends with a newline; an unterminated final line is a record cut
     inside write(2), even when its prefix happens to parse (a float
     field truncated to "0." still reads as a float) *)
  let* () =
    let len = String.length text in
    if len > 0 && text.[len - 1] <> '\n' then
      Error
        (Printf.sprintf
           "line %d: journal ends without a newline (record cut mid-write)"
           (count_lines text + 1))
    else Ok ()
  in
  let cur = cursor_of_string text in
  let* header = next_line cur in
  if header <> version then
    if
      String.length header >= 12 && String.sub header 0 12 = "stc-journal-"
    then
      fail cur
        (Printf.sprintf "unsupported journal version %S (this build reads %S)"
           header version)
    else fail cur (Printf.sprintf "expected %S header, got %S" version header)
  else
    let* fingerprint = expect_keyword cur "fingerprint" in
    let* () =
      if
        String.length fingerprint = 16
        && String.for_all
             (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
             fingerprint
      then Ok ()
      else fail cur (Printf.sprintf "malformed fingerprint %S" fingerprint)
    in
    let rec read_entries acc =
      (* end of input here is the crash shape WAL tolerates: the run
         died between records, so everything recorded so far replays *)
      if at_end cur then
        Ok { fingerprint; entries = Array.of_list (List.rev acc); complete = false }
      else
        let* line = next_line cur in
        match String.split_on_char ' ' line with
        | [ "done"; n ] ->
          let* n = parse_int cur "done count" n in
          if n <> List.length acc then
            fail cur
              (Printf.sprintf "done count %d but %d steps recorded" n
                 (List.length acc))
          else if not (at_end cur) then fail cur "trailing content after done"
          else
            Ok
              {
                fingerprint;
                entries = Array.of_list (List.rev acc);
                complete = true;
              }
        | [ "step"; seq; spec_index; accepted; error ] ->
          let* seq = parse_int cur "step sequence" seq in
          if seq <> List.length acc then
            fail cur
              (Printf.sprintf "step sequence %d out of order (expected %d)" seq
                 (List.length acc))
          else
            let* spec_index = parse_int cur "spec index" spec_index in
            let* () =
              if spec_index >= 0 then Ok ()
              else fail cur "negative spec index"
            in
            let* accepted =
              match accepted with
              | "1" -> Ok true
              | "0" -> Ok false
              | _ -> fail cur "accepted must be 0 or 1"
            in
            let* error = parse_float cur "step error" error in
            read_entries ({ spec_index; accepted; error } :: acc)
        | _ -> fail cur "malformed journal line (expected step or done)"
    in
    read_entries []

let to_string r =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (header_text ~fingerprint:r.fingerprint);
  Array.iteri
    (fun i e -> Buffer.add_string buffer (entry_to_text ~seq:i e))
    r.entries;
  if r.complete then
    Buffer.add_string buffer
      (Printf.sprintf "done %d\n" (Array.length r.entries));
  Buffer.contents buffer

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path =
  match read_file path with
  | text -> of_string text
  | exception Sys_error e -> Error e

(* Every record is one line flushed whole, so the only artefact a kill
   or power loss inside write(2) can leave is a final line with no
   terminating newline. A journal that fails the strict parse for any
   other reason — mid-file damage, a mutated complete line — stays
   rejected: that is corruption, not a crash. *)
let recover ~path =
  match read_file path with
  | exception Sys_error e -> Error e
  | text ->
    (match of_string text with
     | Ok r -> Ok (r, 0)
     | Error strict_error ->
       let len = String.length text in
       if len = 0 || text.[len - 1] = '\n' then Error strict_error
       else begin
         let cut =
           match String.rindex_opt text '\n' with
           | Some i -> i + 1
           | None -> 0
         in
         let prefix = String.sub text 0 cut in
         match of_string prefix with
         | Error _ -> Error strict_error
         | Ok r ->
           (try
              let oc = open_out_bin path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () ->
                  output_string oc prefix;
                  flush oc);
              Ok (r, len - cut)
            with Sys_error e -> Error e)
       end)

let open_append ~path ~fingerprint =
  match load ~path with
  | Error _ as e -> e
  | Ok r ->
    if r.fingerprint <> fingerprint then
      Error
        (Printf.sprintf
           "journal fingerprint %s does not match this run (%s): it was \
            written for a different config, training population, or \
            examination order"
           r.fingerprint fingerprint)
    else if r.complete then Error "journal is already complete"
    else begin
      try
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
        in
        Ok { oc; count = Array.length r.entries; finished = false; closed = false }
      with Sys_error e -> Error e
    end
