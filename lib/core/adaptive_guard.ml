module Svr = Stc_svm.Svr
module Svc = Stc_svm.Svc
module Kernel = Stc_svm.Kernel
module Stats = Stc_numerics.Stats

type config = {
  learner : Compaction.learner;
  target_guard : float;
}

let default_config =
  {
    learner = Compaction.Epsilon_svr { c = 10.0; epsilon = 0.1; gamma = None };
    target_guard = 0.05;
  }

type t = {
  specs : Spec.t array;
  kept : int array;
  dropped : int array;
  decision : float array -> float;
  margin : float;
}

let complement ~k dropped =
  let is_dropped = Array.make k false in
  Array.iter
    (fun j ->
      if j < 0 || j >= k then invalid_arg "Adaptive_guard: bad spec index";
      if is_dropped.(j) then invalid_arg "Adaptive_guard: duplicate index";
      is_dropped.(j) <- true)
    dropped;
  let kept = ref [] in
  for j = k - 1 downto 0 do
    if not is_dropped.(j) then kept := j :: !kept
  done;
  Array.of_list !kept

let resolve_gamma gamma features =
  match gamma with Some g -> g | None -> Kernel.median_gamma features

(* a real-valued decision function for either learner *)
let train_decision learner features labels =
  let all_same = Array.for_all (fun l -> l = labels.(0)) labels in
  if all_same then begin
    let constant = float_of_int labels.(0) in
    fun _ -> constant
  end
  else begin
    match learner with
    | Compaction.Epsilon_svr { c; epsilon; gamma } ->
      let kernel = Kernel.rbf (resolve_gamma gamma features) in
      let y = Array.map float_of_int labels in
      let model = Svr.train ~c ~epsilon ~kernel ~x:features ~y () in
      fun v -> Svr.predict model v
    | Compaction.C_svc { c; gamma } ->
      let kernel = Kernel.rbf (resolve_gamma gamma features) in
      let model = Svc.train ~c ~kernel ~x:features ~y:labels () in
      fun v -> Svc.decision model v
    | Compaction.Mlp mlp_config ->
      let y = Array.map float_of_int labels in
      let model = Stc_learn.Mlp.train ~config:mlp_config ~x:features ~y () in
      fun v -> Stc_learn.Mlp.predict model v
  end

let train ?(config = default_config) data ~dropped =
  if Array.length dropped = 0 then
    invalid_arg "Adaptive_guard.train: empty dropped set";
  if config.target_guard < 0.0 || config.target_guard >= 1.0 then
    invalid_arg "Adaptive_guard.train: target_guard outside [0,1)";
  let specs = Device_data.specs data in
  let kept = complement ~k:(Array.length specs) dropped in
  let features = Device_data.features data ~keep:kept in
  let labels = Device_data.pass_labels data ~subset:dropped in
  let decision = train_decision config.learner features labels in
  let magnitudes = Array.map (fun v -> Float.abs (decision v)) features in
  let margin =
    if config.target_guard = 0.0 then 0.0
    else Stats.quantile magnitudes config.target_guard
  in
  { specs; kept; dropped = Array.copy dropped; decision; margin }

let margin t = t.margin

let band t =
  Guard_band.make
    ~tight:(fun v -> if t.decision v >= t.margin then 1 else -1)
    ~loose:(fun v -> if t.decision v > -.t.margin then 1 else -1)

let flow t =
  {
    Compaction.specs = t.specs;
    kept = t.kept;
    dropped = t.dropped;
    band = Some (band t);
    guard_fraction = 0.0;
    measured_guard = false;
  }
