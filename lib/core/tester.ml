type bin = Ship | Scrap | Retest

type outcome = {
  bin : bin;
  verdict : Guard_band.verdict;
  truth_good : bool;
}

type summary = {
  shipped : int;
  scrapped : int;
  retested : int;
  shipped_bad : int;
  scrapped_good : int;
  counts : Metrics.counts;
}

let run ?(resolve_guard = true) flow data =
  let n = Device_data.n_instances data in
  let outcomes =
    Array.init n (fun i ->
        let row = Device_data.instance_row data i in
        let truth_good = Device_data.passes_all data ~instance:i in
        let verdict = Compaction.flow_verdict flow row in
        let bin =
          match verdict with
          | Guard_band.Good -> Ship
          | Guard_band.Bad -> Scrap
          | Guard_band.Guard ->
            if resolve_guard then (if truth_good then Ship else Scrap)
            else Retest
        in
        { bin; verdict; truth_good })
  in
  let shipped = ref 0 and scrapped = ref 0 and retested = ref 0 in
  let shipped_bad = ref 0 and scrapped_good = ref 0 in
  Array.iter
    (fun o ->
      (match o.verdict with
       | Guard_band.Guard -> incr retested
       | Guard_band.Good | Guard_band.Bad -> ());
      match o.bin with
      | Ship ->
        incr shipped;
        if not o.truth_good then incr shipped_bad
      | Scrap ->
        incr scrapped;
        if o.truth_good then incr scrapped_good
      | Retest -> ())
    outcomes;
  let counts =
    Metrics.tally
      ~truth:(Array.map (fun o -> o.truth_good) outcomes)
      ~verdicts:(Array.map (fun o -> o.verdict) outcomes)
  in
  ( outcomes,
    {
      shipped = !shipped;
      scrapped = !scrapped;
      retested = !retested;
      shipped_bad = !shipped_bad;
      scrapped_good = !scrapped_good;
      counts;
    } )

let with_lookup (flow : Compaction.flow) ~resolution =
  match flow.Compaction.band with
  | None -> None
  | Some band ->
    let dim = Array.length flow.Compaction.kept in
    if dim > 6 then None
    else begin
      let config = { Lookup.default_config with resolution } in
      Some (Lookup.build ~config ~dim (Guard_band.classify band))
    end

let lookup_flow_verdict (flow : Compaction.flow) table row =
  (* measured specs checked directly, the model verdict read from the
     table; mirrors Compaction.flow_verdict *)
  let features =
    Array.map
      (fun j -> Spec.normalize flow.Compaction.specs.(j) row.(j))
      flow.Compaction.kept
  in
  let table_flow =
    {
      flow with
      Compaction.band =
        Some
          (Guard_band.make
             ~tight:(fun _ ->
               match Lookup.lookup table features with
               | Guard_band.Good -> 1
               | Guard_band.Bad | Guard_band.Guard -> -1)
             ~loose:(fun _ ->
               match Lookup.lookup table features with
               | Guard_band.Good | Guard_band.Guard -> 1
               | Guard_band.Bad -> -1));
    }
  in
  Compaction.flow_verdict table_flow row
