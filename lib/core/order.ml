module Stats = Stc_numerics.Stats

type strategy =
  | Given of int array
  | By_failure_count
  | By_correlation
  | By_cluster of float
  | By_mutual_information

let failure_counts data =
  let k = Device_data.n_specs data in
  let counts = Array.make k 0 in
  let specs = Device_data.specs data in
  for i = 0 to Device_data.n_instances data - 1 do
    let row = Device_data.instance_row data i in
    for j = 0 to k - 1 do
      if not (Spec.passes specs.(j) row.(j)) then counts.(j) <- counts.(j) + 1
    done
  done;
  counts

let correlation_matrix data =
  let k = Device_data.n_specs data in
  let specs = Device_data.specs data in
  let columns =
    Array.init k (fun j ->
        Array.map (Spec.normalize specs.(j)) (Device_data.spec_column data j))
  in
  Array.init k (fun a ->
      Array.init k (fun b ->
          if a = b then 1.0
          else Float.abs (Stats.correlation columns.(a) columns.(b))))

let mutual_information ?bins data =
  let k = Device_data.n_specs data in
  let n = Device_data.n_instances data in
  if n = 0 then Array.make k 0.0
  else begin
    let specs = Device_data.specs data in
    let labels =
      Array.init n (fun i ->
          if Device_data.passes_all data ~instance:i then 1 else -1)
    in
    let columns =
      Array.init k (fun j ->
          Array.map (Spec.normalize specs.(j)) (Device_data.spec_column data j))
    in
    Stc_learn.Mi.scores ?bins ~labels columns
  end

let check_permutation k order =
  if Array.length order <> k then
    invalid_arg "Order.compute: order length mismatch";
  let seen = Array.make k false in
  Array.iter
    (fun j ->
      if j < 0 || j >= k || seen.(j) then
        invalid_arg "Order.compute: not a permutation";
      seen.(j) <- true)
    order

(* stable sort of indices by key *)
let sorted_indices k key =
  let idx = Array.init k (fun i -> i) in
  Array.stable_sort (fun a b -> compare (key a) (key b)) idx;
  idx

let clusters data ~threshold =
  let k = Device_data.n_specs data in
  let corr = correlation_matrix data in
  (* union-find over the correlation graph *)
  let parent = Array.init k (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  for a = 0 to k - 1 do
    for b = a + 1 to k - 1 do
      if corr.(a).(b) >= threshold then union a b
    done
  done;
  let table = Hashtbl.create 8 in
  for i = 0 to k - 1 do
    let root = find i in
    Hashtbl.replace table root (i :: Option.value ~default:[] (Hashtbl.find_opt table root))
  done;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) table []
  |> List.sort (fun a b -> compare (List.length b) (List.length a))

let compute strategy data =
  let k = Device_data.n_specs data in
  match strategy with
  | Given order ->
    check_permutation k order;
    Array.copy order
  | By_failure_count ->
    let counts = failure_counts data in
    sorted_indices k (fun j -> counts.(j))
  | By_correlation ->
    let corr = correlation_matrix data in
    let best_partner j =
      let m = ref 0.0 in
      for b = 0 to k - 1 do
        if b <> j && corr.(j).(b) > !m then m := corr.(j).(b)
      done;
      !m
    in
    (* most-correlated first: descending, so negate *)
    sorted_indices k (fun j -> -.best_partner j)
  | By_mutual_information ->
    (* least informative about the overall verdict first: those specs
       are the cheapest to make implicit *)
    let scores = mutual_information data in
    sorted_indices k (fun j -> scores.(j))
  | By_cluster threshold ->
    let failures = failure_counts data in
    let groups = clusters data ~threshold in
    (* within each cluster, keep the most-rejecting spec as the
       representative (examined last) *)
    let early = ref [] and late = ref [] in
    List.iter
      (fun members ->
        match members with
        | [] -> ()
        | first :: _ ->
          let representative =
            List.fold_left
              (fun best j -> if failures.(j) > failures.(best) then j else best)
              first members
          in
          let rest =
            List.filter (fun j -> j <> representative) members
            |> List.sort (fun a b -> compare failures.(a) failures.(b))
          in
          early := !early @ rest;
          late := !late @ [ representative ])
      groups;
    Array.of_list (!early @ !late)
