(** Measured specification data for a population of device instances,
    together with the specification definitions. Rows are instances,
    columns are specifications. *)

type t

val make : specs:Spec.t array -> values:float array array -> t
(** Raises [Invalid_argument] on column-count mismatches. The result is
    unweighted; attach importance weights with {!with_weights}. *)

val with_weights : t -> float array -> t
(** A copy carrying the given importance weights. Raises
    [Invalid_argument] unless there is exactly one finite non-negative
    weight per instance. *)

val specs : t -> Spec.t array
val values : t -> float array array
val n_instances : t -> int
val n_specs : t -> int

val value : t -> instance:int -> spec:int -> float
val instance_row : t -> int -> float array
val spec_column : t -> int -> float array

val normalized_row : t -> instance:int -> keep:int array -> float array
(** Normalised (range ↦ [0,1]) values of the kept specifications for
    one instance — the SVM feature vector after compaction removed the
    other columns. *)

val features : t -> keep:int array -> float array array

val passes_all : t -> instance:int -> bool
val passes_subset : t -> instance:int -> subset:int array -> bool

val pass_labels : t -> subset:int array -> int array
(** +1 if the instance passes every spec in [subset], −1 otherwise. *)

val pass_labels_with : t -> specs:Spec.t array -> subset:int array -> int array
(** As {!pass_labels} but judging against alternative (e.g. guard-band
    perturbed) spec definitions, index-aligned with the data's specs. *)

val yield_fraction : t -> float
(** Fraction of instances passing every specification (unweighted). *)

val weights : t -> float array option
(** Importance weights attached at construction; [None] for uniform
    populations. *)

val weight : t -> int -> float
(** Weight of one instance; 1.0 when the population is uniform. *)

val weighted_yield_fraction : t -> float
(** Self-normalised importance estimate [Σ wᵢ·passᵢ / Σ wᵢ] of the
    population yield; equals {!yield_fraction} for uniform data. *)

val of_montecarlo : specs:Spec.t array -> Stc_process.Montecarlo.dataset -> t
(** Carries the dataset's importance weights when any differ from 1.0;
    uniform datasets produce an unweighted [t]. *)
