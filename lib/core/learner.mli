(** The first-class LEARNER contract: everything the compaction loop
    needs from a trainable ±1 predictor — train / predict / save /
    load / name — so the loop itself is learner-agnostic and new model
    families promote in via differential QA gates instead of code
    forks.

    Three families implement the contract today:

    - [Epsilon_svr] — the paper's ε-SVM (regression on ±1 targets,
      classified by sign); the reference implementation. Flows trained
      through this module are byte-identical to the pre-refactor
      direct [Stc_svm.Svr] path (pinned by [test_svm_equiv.ml]).
    - [C_svc] — soft-margin classification, for ablation.
    - [Mlp] — a small pure-OCaml one-hidden-layer perceptron
      ({!Stc_learn.Mlp}), SGD + momentum, deterministic from its
      config seed.

    {b Determinism of training} is part of the contract: given the same
    features, labels and spec, [train] must return a model whose
    serialised bytes are identical on every run and at any domain
    count — it is what makes flows fingerprintable and journal replay
    sound. SVR/SVC satisfy it because SMO is sequential and seeded
    arithmetic; the MLP satisfies it by drawing initialisation and
    sample order from split {!Stc_numerics.Rng} streams. *)

type spec =
  | Epsilon_svr of { c : float; epsilon : float; gamma : float option }
      (** [gamma = None] uses the median-distance heuristic *)
  | C_svc of { c : float; gamma : float option }
  | Mlp of Stc_learn.Mlp.config

val name : spec -> string
(** ["svr"], ["svc"] or ["mlp"] — the family token used by the CLI,
    journal fingerprints and bench reports. *)

val default_svr : spec
(** C = 10, ε = 0.1, γ from the median heuristic — the paper's
    setting and [Compaction.default_config]'s learner. *)

val default_mlp : spec
(** [Mlp Stc_learn.Mlp.default_config]. *)

(** {1 Warm starts}

    An optional cross-candidate execution state. Only ε-SVR supports
    one (SMO alpha reuse); for every other family [warm_state] is
    [None] and the loop trains cold. Semantics are unchanged either
    way — warm starts may only change iteration counts, never the
    model. *)

type warm
type snapshot

val warm_state : spec -> warm option
val checkpoint : warm -> snapshot
val rollback : warm -> snapshot -> unit

(** {1 The contract} *)

val train :
  ?warm:warm ->
  spec ->
  features:float array array ->
  labels:int array ->
  Guard_band.model
(** Trains one ±1 classifier, returned with its model data so flows
    can be serialised. Degenerate one-class label sets short-circuit
    to {!Guard_band.constant} for every family. *)

val predict : Guard_band.model -> float array -> int
(** [Guard_band.predict]. *)

val save : Guard_band.model -> (string, string) result
(** The {!Model_text} embedding ({!Guard_band.Opaque} does not
    serialise). *)

val load : string -> (Guard_band.model, string) result
(** Inverse of {!save} on a standalone text; rejects trailing
    content. *)
