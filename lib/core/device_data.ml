type t = {
  specs : Spec.t array;
  values : float array array;
  weights : float array option;
}

let make ~specs ~values =
  let k = Array.length specs in
  Array.iteri
    (fun i row ->
      if Array.length row <> k then
        invalid_arg
          (Printf.sprintf "Device_data.make: row %d has %d values, expected %d"
             i (Array.length row) k))
    values;
  { specs; values; weights = None }

let with_weights t w =
  if Array.length w <> Array.length t.values then
    invalid_arg
      (Printf.sprintf "Device_data.with_weights: %d weights for %d instances"
         (Array.length w) (Array.length t.values));
  Array.iteri
    (fun i x ->
      if x < 0.0 || not (Float.is_finite x) then
        invalid_arg
          (Printf.sprintf
             "Device_data.with_weights: weight %d is not finite non-negative" i))
    w;
  { t with weights = Some w }

let specs t = t.specs
let values t = t.values
let n_instances t = Array.length t.values
let n_specs t = Array.length t.specs

let weights t = t.weights
let weight t i = match t.weights with None -> 1.0 | Some w -> w.(i)

let value t ~instance ~spec = t.values.(instance).(spec)
let instance_row t i = t.values.(i)
let spec_column t j = Array.map (fun row -> row.(j)) t.values

let normalized_row t ~instance ~keep =
  Array.map
    (fun j -> Spec.normalize t.specs.(j) t.values.(instance).(j))
    keep

let features t ~keep =
  Array.init (n_instances t) (fun i -> normalized_row t ~instance:i ~keep)

let passes_all t ~instance =
  let row = t.values.(instance) in
  let k = Array.length t.specs in
  let rec check j = j >= k || (Spec.passes t.specs.(j) row.(j) && check (j + 1)) in
  check 0

let passes_subset t ~instance ~subset =
  let row = t.values.(instance) in
  Array.for_all (fun j -> Spec.passes t.specs.(j) row.(j)) subset

let pass_labels t ~subset =
  Array.init (n_instances t) (fun i ->
      if passes_subset t ~instance:i ~subset then 1 else -1)

let pass_labels_with t ~specs ~subset =
  if Array.length specs <> Array.length t.specs then
    invalid_arg "Device_data.pass_labels_with: spec count mismatch";
  Array.init (n_instances t) (fun i ->
      let row = t.values.(i) in
      if Array.for_all (fun j -> Spec.passes specs.(j) row.(j)) subset then 1
      else -1)

let yield_fraction t =
  let n = n_instances t in
  if n = 0 then 0.0
  else begin
    let good = ref 0 in
    for i = 0 to n - 1 do
      if passes_all t ~instance:i then incr good
    done;
    float_of_int !good /. float_of_int n
  end

(* Self-normalised importance estimate Σ wᵢ·[pass]ᵢ / Σ wᵢ; coincides
   with [yield_fraction] when no weights are attached. *)
let weighted_yield_fraction t =
  let n = n_instances t in
  if n = 0 then 0.0
  else begin
    let good = ref 0.0 and total = ref 0.0 in
    for i = 0 to n - 1 do
      let w = weight t i in
      total := !total +. w;
      if passes_all t ~instance:i then good := !good +. w
    done;
    if !total = 0.0 then 0.0 else !good /. !total
  end

let of_montecarlo ~specs (dataset : Stc_process.Montecarlo.dataset) =
  (* attach weights only when some instance is actually reweighted, so
     uniform populations keep their historical all-unweighted shape *)
  let t = make ~specs ~values:dataset.specs in
  if Array.for_all (fun w -> w = 1.0) dataset.weights then t
  else with_weights t dataset.weights
