(** The specification-test compaction procedure (Sec. 3, Fig. 2).

    Starting from the complete test set, each candidate test is
    tentatively removed; an ε-SVM is trained to predict pass/fail of
    the removed specification set [S_red] from the remaining measured
    specifications; if the held-out prediction error stays below the
    tolerance [e_T] the removal becomes permanent.

    The final production flow measures only the kept specifications and
    consults a guard-banded model pair for the dropped ones. *)

type learner = Learner.spec =
  | Epsilon_svr of { c : float; epsilon : float; gamma : float option }
      (** the paper's ε-SVM: regression on ±1 targets, classify by
          sign; [gamma = None] uses 1/dim *)
  | C_svc of { c : float; gamma : float option }
      (** standard soft-margin classification, for ablation *)
  | Mlp of Stc_learn.Mlp.config
      (** pure-OCaml one-hidden-layer perceptron; training is
          deterministic from the config seed. Promoted via the
          [Stc_qa.Oracle.learner_promotes] differential gate *)

type validation =
  | On_test_data   (** the paper's protocol: e_p measured on test data *)
  | On_train_data  (** leak-free variant: e_p on the training data *)

type config = {
  learner : learner;
  tolerance : float;       (** e_T: acceptable prediction-error fraction *)
  guard_fraction : float;  (** δ: range perturbation, fraction of width *)
  grid : Grid_compact.config option;
      (** training-data compaction before SVM training *)
  measured_guard : bool;
      (** also guard-band devices whose *measured* kept specs fall
          within δ of a range boundary *)
  validation : validation;
  warm_start : bool;
      (** seed each candidate's SMO solve from the previous
          candidate's alphas (ε-SVR only; C-SVC always starts cold
          because labels enter the dual's equality constraint). An
          execution strategy, not a semantic knob: the final flow and
          all guard-band models always train cold, decisions are
          pinned warm/cold-identical by the equivalence suite, and the
          journal fingerprint deliberately ignores it — a warm run may
          resume a cold journal and vice versa. *)
}

val default_config : config
(** ε-SVR (C=10, ε=0.1, γ=1/dim), e_T = 1 %, δ = 1 %, no grid
    compaction, measured guard on, paper validation protocol, warm
    starts enabled. *)

type flow = {
  specs : Spec.t array;
  kept : int array;
  dropped : int array;
  band : Guard_band.t option;   (** [None] iff nothing was dropped *)
  guard_fraction : float;
  measured_guard : bool;
}

val identity_flow : Spec.t array -> flow
(** The uncompacted flow: every spec measured, no model. *)

val train_predictor : config -> Device_data.t -> dropped:int array ->
  Guard_band.t * (float array -> int)
(** Trains the guard-band model pair and the nominal model for a given
    dropped set. The band carries its trained model data
    ({!Guard_band.model}), so the resulting flow can be serialised with
    [Stc_floor.Flow_io]. The classifiers take the *normalised kept-spec
    feature vector*. Raises [Invalid_argument] when [dropped] is empty
    or not a valid index set. *)

val make_flow : config -> Device_data.t -> dropped:int array -> flow

val flow_verdict : flow -> float array -> Guard_band.verdict
(** Bins one device from its full measured spec row (only kept columns
    are read — at the real tester the dropped specs are never
    measured). *)

val evaluate_flow : flow -> Device_data.t -> Metrics.counts
(** Runs the flow over a (test) population; truth is pass/fail of the
    complete spec set. *)

val evaluate_flow_weighted : flow -> Device_data.t -> Metrics.wcounts
(** As {!evaluate_flow} but each device contributes its importance
    weight ({!Device_data.weight}; 1.0 on uniform populations, so this
    then agrees exactly with the integer tallies). Use on
    boundary-enriched populations to recover unbiased percentages. *)

val prediction_error : (float array -> int) -> Device_data.t ->
  kept:int array -> dropped:int array -> float
(** e_p: fraction of instances whose [S_red] pass/fail the model
    mispredicts. *)

type step = {
  spec_index : int;
  accepted : bool;
  error : float;                    (** e_p for this candidate *)
  counts : Metrics.counts option;   (** test metrics after the step, when evaluated *)
}

type result = {
  flow : flow;
  steps : step list;   (** in examination order *)
  config : config;
}

val greedy :
  ?order:Order.strategy ->
  ?eval_each:bool ->
  config ->
  train:Device_data.t ->
  test:Device_data.t ->
  result
(** The Fig. 2 loop. [order] defaults to [By_failure_count];
    [eval_each] (default false) additionally evaluates the guard-banded
    flow on [test] after every accepted elimination (Figure 5 data). *)

val journal_fingerprint :
  config -> train:Device_data.t -> test:Device_data.t -> order:int array ->
  string
(** Binds a {!Journal} to one run: a hash over the config, the computed
    examination order, and both populations (under [On_test_data] the
    accept decisions read the test data too). Two runs whose greedy
    decisions could diverge get different fingerprints. *)

val greedy_resumable :
  ?order:Order.strategy ->
  ?eval_each:bool ->
  ?journal:Journal.writer ->
  ?replay:Journal.entry array ->
  config ->
  train:Device_data.t ->
  test:Device_data.t ->
  result
(** {!greedy} with crash resumability. [replay] holds the steps an
    earlier (killed) run already decided, in examination order: they
    are taken as recorded — no SVM is trained for them — and the loop
    continues live from the first unjournaled candidate, so the
    dominant cost of a crashed run is not paid twice. Every live step
    is appended (and flushed) to [journal] before the loop advances,
    and the [done] trailer is written on completion. Because each
    training set is a deterministic function of the prior decisions, a
    resumed run returns a flow bit-identical (via [Stc_floor.Flow_io])
    to an uninterrupted one.

    Raises [Invalid_argument] when [replay] does not match this run's
    examination order (guard against resuming a foreign journal beyond
    what {!journal_fingerprint} already catches) and [Failure] when the
    journal cannot be written. *)

val eliminate :
  config -> train:Device_data.t -> test:Device_data.t ->
  dropped:int array -> Metrics.counts * flow
(** Forces a specific dropped set (no acceptance decision) and
    evaluates it — Table 3 rows and Figure 5/6 points. *)
