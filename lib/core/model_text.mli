(** Text embedding of {!Guard_band.model} values inside line-oriented
    container formats ([stc-flow-1] bands, [stc-journal-1] step
    predictors).

    A model embeds as one ["model ..."] header line followed, for
    SVR/SVC, by the {!Stc_svm.Model_io} body verbatim with its line
    count in the header — so a container can skip or extract the body
    without understanding it. *)

val to_text : Guard_band.model -> (string, string) result
(** The embedded form, ending with a newline. [Error] for
    {!Guard_band.Opaque} (a bare closure carries no model data). *)

val parse : Textio.cursor -> (Guard_band.model, string) result
(** Consumes one embedded model from the cursor. *)
