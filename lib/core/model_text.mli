(** Text embedding of {!Guard_band.model} values inside line-oriented
    container formats ([stc-flow-1]/[stc-flow-2] bands, [stc-journal-1]
    step predictors).

    A model embeds as one ["model <family> ..."] header line followed,
    for SVR/SVC/MLP, by the family's own body verbatim
    ({!Stc_svm.Model_io} or {!Stc_learn.Mlp}) with its line count in
    the header — so a container can skip or extract the body without
    understanding it. The body's first line is the family's own tag
    (e.g. [stc-svr-1]); {!parse} checks it against the header family
    {e before} reading the rest of the body and fails fast with a
    line-numbered error on mismatch. *)

val all_families : string list
(** [["constant"; "svr"; "svc"; "mlp"]] *)

val legacy_families : string list
(** The families an [stc-flow-1] container may hold:
    [["constant"; "svr"; "svc"]]. *)

val to_text : Guard_band.model -> (string, string) result
(** The embedded form, ending with a newline. [Error] for
    {!Guard_band.Opaque} (a bare closure carries no model data). *)

val parse :
  ?families:string list -> Textio.cursor -> (Guard_band.model, string) result
(** Consumes one embedded model from the cursor. [families] (default
    {!all_families}) restricts which family tokens the surrounding
    container admits — an [stc-flow-1] reader passes
    {!legacy_families} so an MLP model under a v1 header is rejected
    at the model line with a precise error. *)
