type counts = {
  total : int;
  truth_good : int;
  truth_bad : int;
  escapes : int;
  losses : int;
  guards : int;
  correct_good : int;
  correct_bad : int;
}

let empty =
  {
    total = 0;
    truth_good = 0;
    truth_bad = 0;
    escapes = 0;
    losses = 0;
    guards = 0;
    correct_good = 0;
    correct_bad = 0;
  }

let record c ~truth_good verdict =
  let c =
    {
      c with
      total = c.total + 1;
      truth_good = c.truth_good + (if truth_good then 1 else 0);
      truth_bad = c.truth_bad + (if truth_good then 0 else 1);
    }
  in
  match (verdict, truth_good) with
  | Guard_band.Guard, _ -> { c with guards = c.guards + 1 }
  | Guard_band.Good, true -> { c with correct_good = c.correct_good + 1 }
  | Guard_band.Good, false -> { c with escapes = c.escapes + 1 }
  | Guard_band.Bad, false -> { c with correct_bad = c.correct_bad + 1 }
  | Guard_band.Bad, true -> { c with losses = c.losses + 1 }

let tally ~truth ~verdicts =
  if Array.length truth <> Array.length verdicts then
    invalid_arg "Metrics.tally: length mismatch";
  let c = ref empty in
  Array.iteri (fun i t -> c := record !c ~truth_good:t verdicts.(i)) truth;
  !c

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let escape_pct c = pct c.escapes c.total
let loss_pct c = pct c.losses c.total
let guard_pct c = pct c.guards c.total
let yield_pct c = pct c.truth_good c.total
let prediction_error_pct c = pct (c.escapes + c.losses) c.total

let pp fmt c =
  Format.fprintf fmt
    "n=%d yield=%.1f%% escape=%.2f%% loss=%.2f%% guard=%.2f%%" c.total
    (yield_pct c) (escape_pct c) (loss_pct c) (guard_pct c)

(* Importance-weighted accounting: identical structure, but each device
   contributes its weight instead of 1, so enriched (boundary-biased)
   populations yield unbiased population percentages. *)

type wcounts = {
  w_total : float;
  w_truth_good : float;
  w_truth_bad : float;
  w_escapes : float;
  w_losses : float;
  w_guards : float;
  w_correct_good : float;
  w_correct_bad : float;
}

let wempty =
  {
    w_total = 0.0;
    w_truth_good = 0.0;
    w_truth_bad = 0.0;
    w_escapes = 0.0;
    w_losses = 0.0;
    w_guards = 0.0;
    w_correct_good = 0.0;
    w_correct_bad = 0.0;
  }

let wrecord c ~truth_good ~weight verdict =
  if weight < 0.0 || not (Float.is_finite weight) then
    invalid_arg "Metrics.wrecord: weight must be finite and non-negative";
  let c =
    {
      c with
      w_total = c.w_total +. weight;
      w_truth_good = c.w_truth_good +. (if truth_good then weight else 0.0);
      w_truth_bad = c.w_truth_bad +. (if truth_good then 0.0 else weight);
    }
  in
  match (verdict, truth_good) with
  | Guard_band.Guard, _ -> { c with w_guards = c.w_guards +. weight }
  | Guard_band.Good, true -> { c with w_correct_good = c.w_correct_good +. weight }
  | Guard_band.Good, false -> { c with w_escapes = c.w_escapes +. weight }
  | Guard_band.Bad, false -> { c with w_correct_bad = c.w_correct_bad +. weight }
  | Guard_band.Bad, true -> { c with w_losses = c.w_losses +. weight }

let wtally ~truth ~verdicts ~weights =
  let n = Array.length truth in
  if Array.length verdicts <> n || Array.length weights <> n then
    invalid_arg "Metrics.wtally: length mismatch";
  let c = ref wempty in
  Array.iteri
    (fun i t -> c := wrecord !c ~truth_good:t ~weight:weights.(i) verdicts.(i))
    truth;
  !c

let wpct num den = if den = 0.0 then 0.0 else 100.0 *. num /. den

let wescape_pct c = wpct c.w_escapes c.w_total
let wloss_pct c = wpct c.w_losses c.w_total
let wguard_pct c = wpct c.w_guards c.w_total
let wyield_pct c = wpct c.w_truth_good c.w_total
let wprediction_error_pct c = wpct (c.w_escapes +. c.w_losses) c.w_total

let of_counts c =
  {
    w_total = float_of_int c.total;
    w_truth_good = float_of_int c.truth_good;
    w_truth_bad = float_of_int c.truth_bad;
    w_escapes = float_of_int c.escapes;
    w_losses = float_of_int c.losses;
    w_guards = float_of_int c.guards;
    w_correct_good = float_of_int c.correct_good;
    w_correct_bad = float_of_int c.correct_bad;
  }

let wpp fmt c =
  Format.fprintf fmt
    "w=%.1f yield=%.1f%% escape=%.2f%% loss=%.2f%% guard=%.2f%%" c.w_total
    (wyield_pct c) (wescape_pct c) (wloss_pct c) (wguard_pct c)
