(** Production-tester simulation: run a compacted flow over a stream of
    devices, bin them, and optionally resolve guard-band parts by full
    (adaptive) test — the deployment story of Sec. 3.3/4.2. *)

type bin = Ship | Scrap | Retest

type outcome = {
  bin : bin;
  verdict : Guard_band.verdict;
  truth_good : bool;
}

type summary = {
  shipped : int;
  scrapped : int;
  retested : int;
  shipped_bad : int;   (** defect escapes that reached customers *)
  scrapped_good : int; (** yield loss *)
  counts : Metrics.counts;
}

val run :
  ?resolve_guard:bool ->
  Compaction.flow ->
  Device_data.t ->
  outcome array * summary
(** Bins every instance. With [resolve_guard] (default true) guard-band
    parts are fully tested — they ship exactly when truly good, so they
    contribute no escape or loss, only retest cost. With
    [resolve_guard:false] guard parts stay binned [Retest] (queued for
    the full-test station, counted in [retested]), so
    [shipped + scrapped + retested = total]. *)

val with_lookup :
  Compaction.flow -> resolution:int -> Lookup.t option
(** Builds the tester lookup table over the kept-spec space when the
    flow has a model and the dimensionality is tractable (≤ 6 kept
    specs); [None] otherwise. *)

val lookup_flow_verdict :
  Compaction.flow -> Lookup.t -> float array -> Guard_band.verdict
(** Like {!Compaction.flow_verdict} but the model consultation goes
    through the lookup table — what the real tester program would do. *)
