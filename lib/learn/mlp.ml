module Rng = Stc_numerics.Rng

type config = {
  hidden : int;
  epochs : int;
  rate : float;
  momentum : float;
  seed : int;
}

let default_config =
  { hidden = 8; epochs = 300; rate = 0.05; momentum = 0.9; seed = 1905 }

type model = {
  hidden_w : float array array; (* hidden x dim *)
  hidden_b : float array;       (* hidden *)
  out_w : float array;          (* hidden *)
  out_b : float;
}

type raw = {
  raw_hidden_w : float array array;
  raw_hidden_b : float array;
  raw_out_w : float array;
  raw_out_b : float;
}

let dim m = if Array.length m.hidden_w = 0 then 0 else Array.length m.hidden_w.(0)
let n_hidden m = Array.length m.hidden_w

let check_raw r =
  let h = Array.length r.raw_hidden_w in
  if h = 0 then invalid_arg "Mlp.of_raw: no hidden units";
  let d = Array.length r.raw_hidden_w.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Mlp.of_raw: ragged hidden weights")
    r.raw_hidden_w;
  if Array.length r.raw_hidden_b <> h then
    invalid_arg "Mlp.of_raw: hidden bias length mismatch";
  if Array.length r.raw_out_w <> h then
    invalid_arg "Mlp.of_raw: output weight length mismatch"

let of_raw r =
  check_raw r;
  {
    hidden_w = Array.map Array.copy r.raw_hidden_w;
    hidden_b = Array.copy r.raw_hidden_b;
    out_w = Array.copy r.raw_out_w;
    out_b = r.raw_out_b;
  }

let to_raw m =
  {
    raw_hidden_w = Array.map Array.copy m.hidden_w;
    raw_hidden_b = Array.copy m.hidden_b;
    raw_out_w = Array.copy m.out_w;
    raw_out_b = m.out_b;
  }

let forward m x =
  let h = Array.length m.hidden_w in
  let d = dim m in
  if Array.length x <> d then
    invalid_arg
      (Printf.sprintf "Mlp.predict: expected %d features, got %d" d
         (Array.length x));
  let acc = ref m.out_b in
  for i = 0 to h - 1 do
    let wi = m.hidden_w.(i) in
    let s = ref m.hidden_b.(i) in
    for j = 0 to d - 1 do
      s := !s +. (wi.(j) *. x.(j))
    done;
    acc := !acc +. (m.out_w.(i) *. tanh !s)
  done;
  !acc

let predict = forward
let classify m x = if forward m x >= 0.0 then 1 else -1

let check_config c =
  if c.hidden < 1 then invalid_arg "Mlp.train: hidden must be >= 1";
  if c.epochs < 0 then invalid_arg "Mlp.train: epochs must be >= 0";
  if not (c.rate > 0.0 && Float.is_finite c.rate) then
    invalid_arg "Mlp.train: rate must be positive";
  if not (c.momentum >= 0.0 && c.momentum < 1.0) then
    invalid_arg "Mlp.train: momentum must be in [0, 1)"

let train ?(config = default_config) ~x ~y () =
  check_config config;
  let n = Array.length x in
  if n = 0 then invalid_arg "Mlp.train: empty training set";
  if Array.length y <> n then invalid_arg "Mlp.train: x/y length mismatch";
  let d = Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Mlp.train: ragged rows")
    x;
  let h = config.hidden in
  let rng = Rng.create config.seed in
  let w_rng = Rng.split rng in
  let order_rng = Rng.split rng in
  (* Deterministic initialisation: uniform in +-1/sqrt(fan_in), drawn in
     a fixed traversal order from the dedicated weight stream. *)
  let s_in = 1.0 /. sqrt (float_of_int (max 1 d)) in
  let s_hid = 1.0 /. sqrt (float_of_int h) in
  let hidden_w =
    Array.init h (fun _ ->
        Array.init d (fun _ -> Rng.uniform w_rng (-.s_in) s_in))
  in
  let hidden_b = Array.make h 0.0 in
  let out_w = Array.init h (fun _ -> Rng.uniform w_rng (-.s_hid) s_hid) in
  let out_b = ref 0.0 in
  (* Momentum velocities. *)
  let v_hw = Array.init h (fun _ -> Array.make d 0.0) in
  let v_hb = Array.make h 0.0 in
  let v_ow = Array.make h 0.0 in
  let v_ob = ref 0.0 in
  let act = Array.make h 0.0 in
  let order = Array.init n (fun i -> i) in
  for _epoch = 1 to config.epochs do
    Rng.shuffle order_rng order;
    for k = 0 to n - 1 do
      let xi = x.(order.(k)) and yi = y.(order.(k)) in
      (* Forward, caching hidden activations. *)
      let out = ref !out_b in
      for i = 0 to h - 1 do
        let wi = hidden_w.(i) in
        let s = ref hidden_b.(i) in
        for j = 0 to d - 1 do
          s := !s +. (wi.(j) *. xi.(j))
        done;
        let a = tanh !s in
        act.(i) <- a;
        out := !out +. (out_w.(i) *. a)
      done;
      (* Backward: squared error (out - y)^2 / 2, linear output. *)
      let err = !out -. yi in
      for i = 0 to h - 1 do
        let a = act.(i) in
        (* Gradient wrt output weight uses the pre-update weight for the
           hidden delta, so snapshot it first. *)
        let ow = out_w.(i) in
        let g_ow = err *. a in
        v_ow.(i) <- (config.momentum *. v_ow.(i)) -. (config.rate *. g_ow);
        out_w.(i) <- ow +. v_ow.(i);
        let delta = err *. ow *. (1.0 -. (a *. a)) in
        let wi = hidden_w.(i) and vi = v_hw.(i) in
        for j = 0 to d - 1 do
          let g = delta *. xi.(j) in
          vi.(j) <- (config.momentum *. vi.(j)) -. (config.rate *. g);
          wi.(j) <- wi.(j) +. vi.(j)
        done;
        v_hb.(i) <- (config.momentum *. v_hb.(i)) -. (config.rate *. delta);
        hidden_b.(i) <- hidden_b.(i) +. v_hb.(i)
      done;
      v_ob := (config.momentum *. !v_ob) -. (config.rate *. err);
      out_b := !out_b +. !v_ob
    done
  done;
  { hidden_w; hidden_b; out_w; out_b = !out_b }

(* --- Serialisation: flat line format, canonical and byte-stable. ---

   stc-mlp-1
   dim D
   hidden H
   unit <bias> <w1> ... <wD>     (H lines)
   out <bias> <w1> ... <wH>
*)

let tag = "stc-mlp-1"
let fp = Printf.sprintf "%.17g"

let to_string m =
  let buf = Buffer.create 256 in
  let h = n_hidden m and d = dim m in
  Buffer.add_string buf tag;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "dim %d\n" d);
  Buffer.add_string buf (Printf.sprintf "hidden %d\n" h);
  for i = 0 to h - 1 do
    Buffer.add_string buf "unit ";
    Buffer.add_string buf (fp m.hidden_b.(i));
    for j = 0 to d - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (fp m.hidden_w.(i).(j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "out ";
  Buffer.add_string buf (fp m.out_b);
  for i = 0 to h - 1 do
    Buffer.add_char buf ' ';
    Buffer.add_string buf (fp m.out_w.(i))
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_floats ~what expected fields =
  if List.length fields <> expected then
    Error
      (Printf.sprintf "%s: expected %d values, got %d" what expected
         (List.length fields))
  else
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | f :: rest -> (
          match float_of_string_opt f with
          | Some v when Float.is_finite v -> go (v :: acc) rest
          | _ -> Error (Printf.sprintf "%s: bad float %S" what f))
    in
    go [] fields

let split_line line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_int_header ~key line =
  match split_line line with
  | [ k; v ] when k = key -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Printf.sprintf "bad %s header %S" key line))
  | _ -> Error (Printf.sprintf "expected %S header, got %S" key line)

let of_string s =
  let lines = String.split_on_char '\n' s in
  (* Drop a single trailing empty segment from the final newline. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  match lines with
  | [] -> Error "Mlp.of_string: empty input"
  | got_tag :: rest ->
      if got_tag <> tag then
        Error (Printf.sprintf "expected %S header, got %S" tag got_tag)
      else
        let* d, rest =
          match rest with
          | l :: rest ->
              let* d = parse_int_header ~key:"dim" l in
              Ok (d, rest)
          | [] -> Error "truncated: missing dim header"
        in
        let* h, rest =
          match rest with
          | l :: rest ->
              let* h = parse_int_header ~key:"hidden" l in
              Ok (h, rest)
          | [] -> Error "truncated: missing hidden header"
        in
        if h < 1 then Error "hidden must be >= 1"
        else
          let* units, rest =
            let rec go i acc rest =
              if i = h then Ok (List.rev acc, rest)
              else
                match rest with
                | [] -> Error "truncated: missing unit line"
                | l :: rest -> (
                    match split_line l with
                    | "unit" :: fields ->
                        let* vals =
                          parse_floats ~what:"unit line" (d + 1) fields
                        in
                        go (i + 1) (vals :: acc) rest
                    | _ -> Error (Printf.sprintf "expected unit line, got %S" l))
            in
            go 0 [] rest
          in
          let* out =
            match rest with
            | [ l ] -> (
                match split_line l with
                | "out" :: fields -> parse_floats ~what:"out line" (h + 1) fields
                | _ -> Error (Printf.sprintf "expected out line, got %S" l))
            | [] -> Error "truncated: missing out line"
            | _ -> Error "trailing data after out line"
          in
          let units = Array.of_list units in
          let hidden_w =
            Array.map (fun vals -> Array.sub vals 1 d) units
          in
          let hidden_b = Array.map (fun vals -> vals.(0)) units in
          Ok
            {
              hidden_w;
              hidden_b;
              out_w = Array.sub out 1 h;
              out_b = out.(0);
            }
