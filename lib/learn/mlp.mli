(** A small pure-OCaml multi-layer perceptron: one tanh hidden layer,
    a linear output, trained by per-sample SGD with momentum on ±1
    targets (the arXiv 2406.00516 direction — a neural alternate-test
    regressor instead of ε-SVR).

    Training is a {e deterministic function} of the data and the
    config: all randomness (weight initialisation, per-epoch sample
    order) flows through split {!Stc_numerics.Rng} streams derived from
    [config.seed], and the arithmetic is sequential — so the same call
    always produces the bit-identical model, which is what lets MLP
    guard bands be persisted, fingerprinted, and replayed from
    compaction journals exactly like SVR ones. *)

type config = {
  hidden : int;    (** hidden units (>= 1) *)
  epochs : int;    (** full passes over the training set (>= 0) *)
  rate : float;    (** SGD learning rate (> 0) *)
  momentum : float;(** velocity decay in [0, 1) *)
  seed : int;      (** drives init and sample order; same seed = same model *)
}

val default_config : config
(** hidden 8, epochs 300, rate 0.05, momentum 0.9, seed 1905. *)

type model

val train :
  ?config:config -> x:float array array -> y:float array -> unit -> model
(** [y] holds ±1 targets (any finite reals are accepted; the sign is
    what classification uses). Raises [Invalid_argument] on an empty
    training set, ragged rows, a length mismatch, or a config out of
    range. [epochs = 0] returns the deterministic initial weights —
    useful as a deliberately bad learner in promotion-gate tests. *)

val predict : model -> float array -> float
(** The raw network output f(x). Raises [Invalid_argument] when the
    probe's width differs from the training width. *)

val classify : model -> float array -> int
(** sign of {!predict}: +1 iff f(x) >= 0. *)

val dim : model -> int
val n_hidden : model -> int

(** {1 Serialisation}

    Flat line-oriented text ([stc-mlp-1] tag), every weight through
    [%.17g] so reloaded models predict bit-identically. The format is
    canonical: [of_string (to_string m) = Ok m'] with
    [to_string m' = to_string m]. *)

val to_string : model -> string

val of_string : string -> (model, string) result
(** Rejects unknown tags, shape mismatches and non-finite weights with
    a descriptive message. *)

(** {1 Raw weights} — exposed so differential oracles can recompute the
    forward pass independently, and QA generators can synthesise
    models. *)

type raw = {
  raw_hidden_w : float array array;  (** hidden × dim *)
  raw_hidden_b : float array;        (** hidden *)
  raw_out_w : float array;           (** hidden *)
  raw_out_b : float;
}

val to_raw : model -> raw
val of_raw : raw -> model
(** Raises [Invalid_argument] on shape disagreement. *)
