let default_bins = 8

let bin_of ~bins ~lo ~hi v =
  if hi <= lo then 0
  else
    let b = int_of_float (float_of_int bins *. ((v -. lo) /. (hi -. lo))) in
    if b < 0 then 0 else if b >= bins then bins - 1 else b

let score ?(bins = default_bins) ~labels values =
  let n = Array.length values in
  if bins < 1 then invalid_arg "Mi.score: bins must be >= 1";
  if n = 0 then invalid_arg "Mi.score: empty input";
  if Array.length labels <> n then invalid_arg "Mi.score: length mismatch";
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Mi.score: non-finite value")
    values;
  let lo = Array.fold_left min values.(0) values in
  let hi = Array.fold_left max values.(0) values in
  (* Integer joint counts c.(bin).(label) with label 0 = fail, 1 = pass:
     everything downstream is exact integer arithmetic divided once at
     the end, so the result cannot depend on sample order. *)
  let joint = Array.make_matrix bins 2 0 in
  for i = 0 to n - 1 do
    let b = bin_of ~bins ~lo ~hi values.(i) in
    let l = if labels.(i) > 0 then 1 else 0 in
    joint.(b).(l) <- joint.(b).(l) + 1
  done;
  let label_tot = Array.make 2 0 in
  let bin_tot = Array.make bins 0 in
  for b = 0 to bins - 1 do
    for l = 0 to 1 do
      label_tot.(l) <- label_tot.(l) + joint.(b).(l);
      bin_tot.(b) <- bin_tot.(b) + joint.(b).(l)
    done
  done;
  let fn = float_of_int n in
  let mi = ref 0.0 in
  for b = 0 to bins - 1 do
    for l = 0 to 1 do
      let c = joint.(b).(l) in
      if c > 0 then begin
        let p_bl = float_of_int c /. fn in
        let p_b = float_of_int bin_tot.(b) /. fn in
        let p_l = float_of_int label_tot.(l) /. fn in
        mi := !mi +. (p_bl *. log (p_bl /. (p_b *. p_l)))
      end
    done
  done;
  (* Clamp the tiny negative rounding residue a pure-counts MI can
     produce when a column is (near-)independent of the label. *)
  if !mi < 0.0 then 0.0 else !mi

let scores ?bins ~labels columns =
  Array.map (fun values -> score ?bins ~labels values) columns

let rank ?bins ~labels columns =
  let s = scores ?bins ~labels columns in
  let idx = Array.init (Array.length s) (fun i -> i) in
  Array.stable_sort
    (fun a b ->
      let c = Float.compare s.(a) s.(b) in
      if c <> 0 then c else Stdlib.compare a b)
    idx;
  idx
