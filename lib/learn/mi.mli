(** Histogram mutual information between a real-valued feature column
    and a binary pass/fail label — the 2010.15240 direction: score each
    spec by how much information its measurement carries about the
    overall verdict, and drop the least informative specs first.

    Columns are discretised into [bins] equal-width cells over the
    column's own [min, max] range; MI is then computed {e purely from
    integer joint counts}, in nats. Because the counts are integers and
    the summation order is fixed by bin index, the score is
    bit-for-bit invariant under any permutation that is applied to
    values and labels together. A constant column (or a constant label)
    has zero mutual information by construction. *)

val default_bins : int
(** 8 *)

val score : ?bins:int -> labels:int array -> float array -> float
(** [score ~labels values] is the MI (nats) between the binned values
    and the labels. Labels are interpreted by sign: [> 0] is pass,
    everything else fail. Raises [Invalid_argument] on a length
    mismatch, empty input, non-finite values, or [bins < 1]. *)

val scores :
  ?bins:int -> labels:int array -> float array array -> float array
(** {!score} per column. *)

val rank : ?bins:int -> labels:int array -> float array array -> int array
(** Column indices sorted by ascending MI (least informative first —
    the greedy drop order), ties broken by original index (stable). *)
