(** Device measurement rows as CSV: one header line of spec names, then
    one device per line, values in [%.17g] so a written population reads
    back bit-identical. The interchange format between the tester's data
    logger and the {!Floor} serving engine. *)

val write :
  path:string -> specs:Stc.Spec.t array -> rows:float array array -> unit
(** Raises [Invalid_argument] on a row-width mismatch or a non-finite
    cell (a NaN/inf would survive [%.17g] and poison the reader),
    [Sys_error] on an unwritable path. *)

val read : path:string -> (string array * float array array, string) result
(** Header names and device rows. All rows must have the header's
    width and every cell must parse as a {e finite} float — NaN/inf
    cells (which [float_of_string] would otherwise accept) and width
    mismatches produce a ["line %d, column %d"]-prefixed error naming
    the offending cell. Blank lines (including a CRLF-only line) are
    skipped — the documented degradation for trailing newlines from
    external loggers. *)
