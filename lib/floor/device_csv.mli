(** Device measurement rows as CSV: one header line of spec names, then
    one device per line, values in [%.17g] so a written population reads
    back bit-identical. The interchange format between the tester's data
    logger and the {!Floor} serving engine. *)

val write :
  path:string -> specs:Stc.Spec.t array -> rows:float array array -> unit
(** Raises [Invalid_argument] on a row-width mismatch or a non-finite
    cell (a NaN/inf would survive [%.17g] and poison the reader),
    [Sys_error] on an unwritable path. *)

val read : path:string -> (string array * float array array, string) result
(** Header names and device rows. All rows must have the header's
    width and every cell must parse as a {e finite} float — NaN/inf
    cells (which [float_of_string] would otherwise accept) and width
    mismatches produce a ["line %d, column %d"]-prefixed error naming
    the offending cell (line numbers are physical, 1-based). Blank
    lines (including a CRLF-only line) are skipped — the documented
    degradation for trailing newlines from external loggers.

    Implemented as a fold over {!open_reader}/{!next}, so it shares the
    streaming parser; use the reader directly when only batch-sized
    chunks are consumed at a time. *)

(** {1 Streaming}

    A pull-based row reader for consumers that bin devices in batches —
    the network server and [stc serve --input -] — so a full floor run
    is never materialised in memory: peak residency is one batch. *)

type reader

val open_reader : path:string -> (reader, string) result
(** Opens the file and consumes the header line. [Error] on an
    unreadable path or an empty file (["empty CSV"]). *)

val reader_of_channel : ?owns_channel:bool -> in_channel -> (reader, string) result
(** As {!open_reader} over an already-open channel (e.g. [stdin]).
    [owns_channel] (default false) transfers the channel to the reader:
    {!close_reader} then closes it. *)

val header : reader -> string array
(** The header's column names (a copy). *)

val next : reader -> (float array option, string) result
(** The next device row, [Ok None] at end of input. Errors are exactly
    {!read}'s, with physical line numbers; an error does not close the
    reader, but rows after a malformed line are suspect — callers
    should stop (as {!read} does). *)

val next_batch : reader -> max:int -> (float array array, string) result
(** Up to [max] rows ([[||]] only at end of input). Raises
    [Invalid_argument] when [max < 1]. *)

val close_reader : reader -> unit
(** Idempotent; closes the underlying channel iff the reader owns it. *)
