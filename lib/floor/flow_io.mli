(** Serialisation of a full compacted flow — specs and ranges, kept and
    dropped indices, the guard-band model pair, guard fraction — in a
    versioned extension of {!Stc_svm.Model_io}'s flat text format, so a
    flow trained once can be shipped to the production floor and served
    by {!Floor}.

    The format is byte-stable: for any [s] produced by {!to_string},
    [to_string (of_string s) = Ok s], and a reloaded flow reproduces the
    original's verdicts bit-for-bit (floats round-trip through
    [%.17g]). Bands built from closures ({!Stc.Guard_band.Opaque}, e.g.
    lookup-table or adaptive-guard bands) cannot be serialised and
    yield [Error]. *)

val version : string
(** The legacy header tag, ["stc-flow-1"] — SVR/SVC/constant bands
    only. *)

val version2 : string
(** The multi-model-family header tag, ["stc-flow-2"]: same container
    layout, but bands may additionally hold {!Stc.Guard_band.Mlp}
    models. *)

val version_of_flow : Stc.Compaction.flow -> string
(** The header {!to_string} will write for this flow: {!version2} iff
    a band model needs it (MLP family), {!version} otherwise — so
    flows expressible in the legacy format keep their exact legacy
    bytes and fingerprints. *)

val to_string : Stc.Compaction.flow -> (string, string) result

val of_string : string -> (Stc.Compaction.flow, string) result
(** Reads both {!version} and {!version2} headers. Errors are
    descriptive and ["line %d"]-prefixed: a header from a newer writer
    reports ["unsupported flow version %S"], an MLP model under a
    legacy [stc-flow-1] header is rejected at its model line, a file
    cut short mid-record reports that the flow text is truncated at
    the line where input ran out, non-finite floats (which
    [float_of_string] would accept) are rejected, [guard_fraction]
    must lie in [[0, 1)], and the kept/dropped index lists must
    partition the spec indices. *)

val fingerprint : Stc.Compaction.flow -> (string, string) result
(** 16 hex digits over the canonical serialised form
    ({!Stc.Journal.fingerprint_hex} of {!to_string}): two flows get the
    same fingerprint iff they serialise byte-identically, so the network
    registry ([Stc_net.Registry]) can tell a genuinely new flow from a
    re-save of the current one before swapping engines. [Error] exactly
    when {!to_string} fails (opaque band). *)

val save : path:string -> Stc.Compaction.flow -> (unit, string) result

val load : path:string -> (Stc.Compaction.flow, string) result
(** {!of_string} on the file's bytes; [Sys_error]s (missing file,
    permissions) come back as [Error] rather than raising. *)
