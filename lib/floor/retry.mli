(** Bounded retry with exponential backoff and deterministic jitter.

    Wraps an unreliable external call — on the test floor, the full
    retest station behind {!Floor.process} — so one transient glitch
    (a dropped link, a busy handler) does not scrap a recoverable
    device. Failures are classified: a [Transient] exception is retried
    up to the attempt budget with exponentially growing, jittered
    delays; a [Permanent] one aborts immediately (retrying a
    out-of-calibration station only wastes tester time).

    The jitter is deterministic — derived from the policy seed and the
    attempt number via {!Stc_numerics.Rng}, never from global state or
    the clock — so a retry schedule is reproducible in tests and two
    engines with the same policy behave identically. *)

type classification =
  | Transient  (** worth retrying: the next attempt may succeed *)
  | Permanent  (** retrying cannot help: fail now *)

type policy = {
  attempts : int;  (** total attempts including the first; >= 1 *)
  base_delay_s : float;
      (** backoff before the first retry; doubles each retry *)
  max_delay_s : float;  (** backoff ceiling *)
  jitter : float;
      (** fraction of the delay randomised away, in [0, 1]: the actual
          delay is uniform in [(1-jitter)·d, d] *)
  seed : int;  (** jitter stream seed *)
  classify : exn -> classification;
}

val default_policy : policy
(** 3 attempts, 1 ms base delay, 50 ms ceiling, 0.5 jitter, every
    exception transient. *)

val delay_s : policy -> retry:int -> float
(** The delay before retry [retry] (1-based): exponential backoff
    clipped to [max_delay_s], with deterministic jitter. Pure. *)

val run :
  ?sleep:(float -> unit) ->
  policy -> (unit -> 'a) -> ('a, exn) result * int
(** [run policy f] calls [f] up to [policy.attempts] times, sleeping
    {!delay_s} between attempts, and returns the first success or the
    last exception, paired with the number of retries actually
    performed (0 when the first attempt settles it). [sleep] defaults
    to [Unix.sleepf]; inject a stub to test schedules without waiting.
    Raises [Invalid_argument] when [attempts < 1].

    OCaml runtime conditions ([Out_of_memory], [Stack_overflow],
    [Assert_failure], [Match_failure]) re-raise immediately, regardless
    of [policy.classify]: they signal a bug or exhausted resources, not
    a transient station glitch, and retrying (or degrading) would only
    mask them. *)
