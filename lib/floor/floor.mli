(** The test-floor serving engine: loads a compacted flow (trained by
    {!Stc.Compaction.greedy}, persisted by {!Flow_io}) and bins a stream
    of device measurement rows in configurable batches across a
    persistent {!Stc_process.Pool} of worker domains.

    Verdicts are bit-identical to calling
    {!Stc.Compaction.flow_verdict} row by row, regardless of batch size
    and domain count: each row's verdict depends only on the row, and
    guard escalation runs in row order on the submitting domain. *)

type config = {
  batch_size : int;  (** devices classified per pool dispatch *)
  domains : int;     (** total parallelism, incl. the calling domain *)
}

val default_config : config
(** 256-device batches, single domain. *)

type outcome = {
  bin : Stc.Tester.bin;
  verdict : Stc.Guard_band.verdict;
}

type stats = {
  devices : int;
  shipped : int;
  scrapped : int;
  retested : int;     (** guard verdicts routed to full test *)
  batches : int;
  elapsed_s : float;  (** total time spent inside {!process} batches *)
  last_batch_s : float;
}

type t

val create : ?config:config -> Stc.Compaction.flow -> t
(** Spawns the worker pool once; reuse the engine across many calls to
    {!process} and {!shutdown} it when the lot is finished. *)

val flow : t -> Stc.Compaction.flow
val config : t -> config

val process :
  ?retest:(float array -> bool) ->
  ?strict:bool ->
  t -> float array array -> outcome array
(** Bins each row: model-confident parts ship or scrap directly;
    guard-band parts are escalated to [retest] — the full (adaptive)
    specification test, [true] = part passes and ships. Without a
    callback guard parts are binned {!Stc.Tester.Retest} for a later
    station. Rows must have the flow's spec count (only kept columns
    are read). Raises [Invalid_argument] on width mismatch or after
    {!shutdown}.

    Non-finite measurements (NaN/±inf, e.g. from a data-logger glitch)
    in a kept column never pass a range check, so by default such a
    device deterministically bins [Scrap] — a documented graceful
    degradation verified by [Stc_qa.Faults]. Pass [~strict:true] to
    instead reject the whole call with [Invalid_argument] before any
    row is binned (the batch is then untouched and the engine's
    counters do not move). *)

val stats : t -> stats
(** Cumulative since creation (or the last {!reset_stats}). *)

val reset_stats : t -> unit

val throughput : t -> float
(** Devices per second over the accumulated batch time. *)

val report : t -> string
(** Counter table via {!Stc.Report.table}. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. *)

val with_engine : ?config:config -> Stc.Compaction.flow -> (t -> 'a) -> 'a
