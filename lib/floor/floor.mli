(** The test-floor serving engine: loads a compacted flow (trained by
    {!Stc.Compaction.greedy}, persisted by {!Flow_io}) and bins a stream
    of device measurement rows in configurable batches across a
    persistent {!Stc_process.Pool} of worker domains.

    Verdicts are bit-identical to calling
    {!Stc.Compaction.flow_verdict} row by row, regardless of batch size
    and domain count: each row's verdict depends only on the row, and
    guard escalation runs in row order on the submitting domain.

    Resilience: the retest callback stands for an external full-test
    station and may fail. With a {!Retry} policy the engine retries
    transient failures; when the station keeps failing — or a batch
    blows its deadline — the engine degrades instead of stopping: guard
    devices are binned {!Stc.Tester.Retest} for a later station,
    counted in [stats.degraded], and serving continues. No device is
    ever dropped. *)

type config = {
  batch_size : int;  (** devices classified per pool dispatch *)
  domains : int;     (** total parallelism, incl. the calling domain *)
}

val default_config : config
(** 256-device batches, single domain. *)

type outcome = {
  bin : Stc.Tester.bin;
  verdict : Stc.Guard_band.verdict;
}

type stats = {
  devices : int;
  shipped : int;
  scrapped : int;
  retested : int;     (** guard verdicts routed to full test *)
  retries : int;      (** retest attempts beyond each device's first *)
  degraded : int;     (** guard devices shed to [Retest] because the
                          station failed, the engine was in degraded
                          mode, or the batch deadline had passed *)
  batches : int;
  elapsed_s : float;  (** total time spent inside {!process} batches *)
  last_batch_s : float;
}

val empty_stats : stats
(** All counters zero — the state after [create] or {!reset_stats}. *)

type t

val create : ?config:config -> Stc.Compaction.flow -> t
(** Spawns the worker pool once; reuse the engine across many calls to
    {!process} and {!shutdown} it when the lot is finished. *)

val flow : t -> Stc.Compaction.flow
val config : t -> config

val full_test : Stc.Compaction.flow -> float array -> bool
(** The complete specification test on a full-width measurement row:
    true iff every spec (kept and dropped) passes its acceptance range.
    This is the retest-station stand-in every serving front end uses
    when the data source already carries all columns (`stc serve`'s
    CSV, the network server's wire rows) — exposed here so they share
    one definition. False (never raises) on a width mismatch. *)

val process :
  ?retest:(float array -> bool) ->
  ?retry:Retry.policy ->
  ?batch_deadline_s:float ->
  ?strict:bool ->
  t -> float array array -> outcome array
(** Bins each row: model-confident parts ship or scrap directly;
    guard-band parts are escalated to [retest] — the full (adaptive)
    specification test, [true] = part passes and ships. Without a
    callback guard parts are binned {!Stc.Tester.Retest} for a later
    station. Rows must have the flow's spec count (only kept columns
    are read). Raises [Invalid_argument] on width mismatch or after
    {!shutdown}.

    [retry] wraps each retest call in {!Retry.run}: transient
    exceptions are retried per the policy (attempts counted in
    [stats.retries]); when the attempts are exhausted or the failure is
    classified permanent, the device is shed — binned [Retest], counted
    in [stats.degraded] — and the engine enters {!degraded} mode, in
    which later guard devices are shed directly instead of hammering a
    dead station. Without [retry], a raising callback propagates to the
    caller (the pre-resilience contract).

    [batch_deadline_s] bounds each batch's escalation phase: once a
    batch has been processing for that long, its remaining guard
    devices are shed (counted [degraded]) rather than waiting on more
    retest calls. The deadline is per batch — the next batch starts
    fresh; it does not by itself enter degraded mode. Raises
    [Invalid_argument] when not positive.

    Non-finite measurements (NaN/±inf, e.g. from a data-logger glitch)
    in a kept column never pass a range check, so by default such a
    device deterministically bins [Scrap] — a documented graceful
    degradation verified by [Stc_qa.Faults]. Pass [~strict:true] to
    instead reject the whole call with [Invalid_argument] before any
    row is binned (the batch is then untouched and the engine's
    counters — all of {!stats}, including [batches] and [elapsed_s] —
    do not move). *)

val stats : t -> stats
(** Cumulative since creation (or the last {!reset_stats}). Each count
    is a lock-free read of an atomic {!Stc_obs.Registry.Counter};
    the same events are mirrored into the global registry as
    [stc_floor_devices_total], [stc_floor_shipped_total],
    [stc_floor_scrapped_total], [stc_floor_retested_total],
    [stc_floor_retries_total], [stc_floor_degraded_total] and
    [stc_floor_batches_total], with per-batch latency in the
    [stc_floor_batch_s] histogram. *)

val degraded : t -> bool
(** True once a retest callback has permanently failed; sticky until
    {!reset_stats} (i.e. until the operator declares the full-test
    station repaired). *)

val reset_stats : t -> unit
(** Zeroes every {!stats} counter and leaves {!degraded} mode. *)

val throughput : t -> float
(** Devices per second over the accumulated batch time. *)

val report : t -> string
(** Counter table via {!Stc.Report.table}. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. *)

val with_engine : ?config:config -> Stc.Compaction.flow -> (t -> 'a) -> 'a
