module Spec = Stc.Spec
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Model_text = Stc.Model_text

open Stc.Textio

let version = "stc-flow-1"
let version2 = "stc-flow-2"

(* A flow needs the v2 container exactly when some band model belongs
   to a family stc-flow-1 never carried (today: the MLP). Everything
   else keeps writing v1 bytes, so pre-existing SVR/SVC flows — and
   their fingerprints — are untouched by the format bump. *)
let needs_v2 (flow : Compaction.flow) =
  match flow.Compaction.band with
  | None -> false
  | Some band ->
    let is_mlp = function Guard_band.Mlp _ -> true | _ -> false in
    is_mlp (Guard_band.tight_model band)
    || is_mlp (Guard_band.loose_model band)

let version_of_flow flow = if needs_v2 flow then version2 else version

(* ------------------------------ writing --------------------------- *)

let model_to_text m =
  match Model_text.to_text m with
  | Ok _ as ok -> ok
  | Error e -> Error ("Flow_io: " ^ e)

let to_string (flow : Compaction.flow) =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer (version_of_flow flow);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer
    (Printf.sprintf "guard_fraction %s\n" (fp flow.Compaction.guard_fraction));
  Buffer.add_string buffer
    (Printf.sprintf "measured_guard %d\n"
       (if flow.Compaction.measured_guard then 1 else 0));
  Buffer.add_string buffer
    (Printf.sprintf "specs %d\n" (Array.length flow.Compaction.specs));
  Array.iter
    (fun (s : Spec.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "spec %s %s %s %s %s\n" (encode_field s.Spec.name)
           (encode_field s.Spec.unit_label) (fp s.Spec.nominal)
           (fp s.Spec.range.Spec.lower) (fp s.Spec.range.Spec.upper)))
    flow.Compaction.specs;
  add_index_line buffer "kept" flow.Compaction.kept;
  add_index_line buffer "dropped" flow.Compaction.dropped;
  match flow.Compaction.band with
  | None ->
    Buffer.add_string buffer "band none\n";
    Ok (Buffer.contents buffer)
  | Some band when Guard_band.is_single band ->
    (match model_to_text (Guard_band.tight_model band) with
     | Error _ as e -> e
     | Ok text ->
       Buffer.add_string buffer "band single\n";
       Buffer.add_string buffer text;
       Ok (Buffer.contents buffer))
  | Some band ->
    (match
       ( model_to_text (Guard_band.tight_model band),
         model_to_text (Guard_band.loose_model band) )
     with
     | Error e, _ | _, Error e -> Error e
     | Ok tight, Ok loose ->
       Buffer.add_string buffer "band pair\n";
       Buffer.add_string buffer tight;
       Buffer.add_string buffer loose;
       Ok (Buffer.contents buffer))

(* ------------------------------ reading --------------------------- *)

let of_string text =
  let cur = cursor_of_string text in
  let* header = next_line cur in
  let* model_families =
    if header = version then Ok Stc.Model_text.legacy_families
    else if header = version2 then Ok Stc.Model_text.all_families
    else if String.length header >= 9 && String.sub header 0 9 = "stc-flow-"
    then
      fail cur
        (Printf.sprintf
           "unsupported flow version %S (this build reads %S and %S)" header
           version version2)
    else fail cur (Printf.sprintf "expected %S header, got %S" version header)
  in
    let* guard_fraction = expect_keyword cur "guard_fraction" in
    let* guard_fraction = parse_float cur "guard_fraction" guard_fraction in
    let* () =
      if guard_fraction >= 0.0 && guard_fraction < 1.0 then Ok ()
      else fail cur "guard_fraction out of range [0, 1)"
    in
    let* measured_guard = expect_keyword cur "measured_guard" in
    let* measured_guard =
      match measured_guard with
      | "1" -> Ok true
      | "0" -> Ok false
      | _ -> fail cur "measured_guard must be 0 or 1"
    in
    let* n_specs = expect_keyword cur "specs" in
    let* n_specs = parse_int cur "spec count" n_specs in
    if n_specs < 0 then fail cur "negative spec count"
    else
      let rec read_specs n acc =
        if n = 0 then Ok (Array.of_list (List.rev acc))
        else
          let* line = next_line cur in
          match String.split_on_char ' ' line with
          | [ "spec"; name; unit_label; nominal; lower; upper ] ->
            let* name =
              match decode_field name with
              | Ok v -> Ok v
              | Error e -> fail cur e
            in
            let* unit_label =
              match decode_field unit_label with
              | Ok v -> Ok v
              | Error e -> fail cur e
            in
            let* nominal = parse_float cur "nominal" nominal in
            let* lower = parse_float cur "lower" lower in
            let* upper = parse_float cur "upper" upper in
            (match Spec.make ~name ~unit_label ~nominal ~lower ~upper with
             | spec -> read_specs (n - 1) (spec :: acc)
             | exception Invalid_argument e -> fail cur e)
          | _ -> fail cur "malformed spec line"
      in
      let* specs = read_specs n_specs [] in
      let* kept_line = next_line cur in
      let* kept = parse_index_line cur "kept" kept_line in
      let* dropped_line = next_line cur in
      let* dropped = parse_index_line cur "dropped" dropped_line in
      let check_indices what indices =
        if Array.for_all (fun i -> i >= 0 && i < n_specs) indices then Ok ()
        else fail cur (what ^ " index out of range")
      in
      let* () = check_indices "kept" kept in
      let* () = check_indices "dropped" dropped in
      let* () =
        let seen = Array.make n_specs 0 in
        Array.iter (fun i -> seen.(i) <- seen.(i) + 1) kept;
        Array.iter (fun i -> seen.(i) <- seen.(i) + 1) dropped;
        if Array.for_all (fun c -> c = 1) seen then Ok ()
        else
          fail cur
            "kept and dropped must partition the spec indices (each spec \
             exactly once)"
      in
      let* band_line = next_line cur in
      let* band =
        match band_line with
        | "band none" -> Ok None
        | "band single" ->
          let* m = Model_text.parse ~families:model_families cur in
          Ok (Some (Guard_band.single_model m))
        | "band pair" ->
          let* tight = Model_text.parse ~families:model_families cur in
          let* loose = Model_text.parse ~families:model_families cur in
          Ok (Some (Guard_band.of_models ~tight ~loose))
        | _ -> fail cur "expected band line (none | single | pair)"
      in
      if not (at_end cur) then fail cur "trailing content after flow"
      else
        Ok
          {
            Compaction.specs;
            kept;
            dropped;
            band;
            guard_fraction;
            measured_guard;
          }

(* ---------------------------- fingerprint ------------------------- *)

let fingerprint flow =
  match to_string flow with
  | Error _ as e -> e
  | Ok text -> Ok (Stc.Journal.fingerprint_hex text)

(* ------------------------------- files ---------------------------- *)

let save ~path flow =
  match to_string flow with
  | Error _ as e -> e
  | Ok text ->
    (try
       let oc = open_out_bin path in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc text);
       Ok ()
     with Sys_error e -> Error e)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error e -> Error e
