module Spec = Stc.Spec
module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Model_io = Stc_svm.Model_io

let version = "stc-flow-1"

let fp = Printf.sprintf "%.17g"

(* Spec names and unit labels may contain spaces; fields are
   percent-encoded so every line stays space-splittable. The empty
   string encodes to a lone "%", which no non-empty encoding produces
   (a literal '%' is always "%25"). *)
let encode_field s =
  if s = "" then "%"
  else begin
    let buffer = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '%' | ' ' | '\t' | '\n' | '\r' ->
          Buffer.add_string buffer (Printf.sprintf "%%%02X" (Char.code c))
        | c -> Buffer.add_char buffer c)
      s;
    Buffer.contents buffer
  end

let decode_field s =
  if s = "%" then Ok ""
  else begin
    let len = String.length s in
    let buffer = Buffer.create len in
    let rec go i =
      if i >= len then Ok (Buffer.contents buffer)
      else if s.[i] = '%' then begin
        if i + 2 >= len then Error "truncated percent escape"
        else begin
          match int_of_string_opt (Printf.sprintf "0x%c%c" s.[i + 1] s.[i + 2]) with
          | Some code ->
            Buffer.add_char buffer (Char.chr code);
            go (i + 3)
          | None -> Error "bad percent escape"
        end
      end
      else begin
        Buffer.add_char buffer s.[i];
        go (i + 1)
      end
    in
    go 0
  end

(* ------------------------------ writing --------------------------- *)

let add_index_line buffer key indices =
  Buffer.add_string buffer key;
  Buffer.add_char buffer ' ';
  Buffer.add_string buffer (string_of_int (Array.length indices));
  Array.iter
    (fun i ->
      Buffer.add_char buffer ' ';
      Buffer.add_string buffer (string_of_int i))
    indices;
  Buffer.add_char buffer '\n'

let count_lines text =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) text;
  !n

let model_to_text (m : Guard_band.model) =
  match m with
  | Guard_band.Constant c -> Ok (Printf.sprintf "model constant %d\n" c)
  | Guard_band.Svr svr ->
    let body = Model_io.svr_to_string svr in
    Ok (Printf.sprintf "model svr %d\n%s" (count_lines body) body)
  | Guard_band.Svc svc ->
    let body = Model_io.svc_to_string svc in
    Ok (Printf.sprintf "model svc %d\n%s" (count_lines body) body)
  | Guard_band.Opaque _ ->
    Error
      "Flow_io: band holds an opaque classifier (lookup table or \
       adaptive-guard margin); only Constant/Svr/Svc models serialise"

let to_string (flow : Compaction.flow) =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer version;
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer
    (Printf.sprintf "guard_fraction %s\n" (fp flow.Compaction.guard_fraction));
  Buffer.add_string buffer
    (Printf.sprintf "measured_guard %d\n"
       (if flow.Compaction.measured_guard then 1 else 0));
  Buffer.add_string buffer
    (Printf.sprintf "specs %d\n" (Array.length flow.Compaction.specs));
  Array.iter
    (fun (s : Spec.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "spec %s %s %s %s %s\n" (encode_field s.Spec.name)
           (encode_field s.Spec.unit_label) (fp s.Spec.nominal)
           (fp s.Spec.range.Spec.lower) (fp s.Spec.range.Spec.upper)))
    flow.Compaction.specs;
  add_index_line buffer "kept" flow.Compaction.kept;
  add_index_line buffer "dropped" flow.Compaction.dropped;
  match flow.Compaction.band with
  | None ->
    Buffer.add_string buffer "band none\n";
    Ok (Buffer.contents buffer)
  | Some band when Guard_band.is_single band ->
    (match model_to_text (Guard_band.tight_model band) with
     | Error _ as e -> e
     | Ok text ->
       Buffer.add_string buffer "band single\n";
       Buffer.add_string buffer text;
       Ok (Buffer.contents buffer))
  | Some band ->
    (match
       ( model_to_text (Guard_band.tight_model band),
         model_to_text (Guard_band.loose_model band) )
     with
     | Error e, _ | _, Error e -> Error e
     | Ok tight, Ok loose ->
       Buffer.add_string buffer "band pair\n";
       Buffer.add_string buffer tight;
       Buffer.add_string buffer loose;
       Ok (Buffer.contents buffer))

(* ------------------------------ reading --------------------------- *)

(* A cursor over the raw lines; model bodies are embedded verbatim, so
   no trimming or blank-line filtering happens at this level. *)
type cursor = {
  mutable lines : string list;
  mutable lineno : int;
}

let next_line cur =
  match cur.lines with
  | [] ->
    Error
      (Printf.sprintf "line %d: flow text is truncated (unexpected end of input)"
         (cur.lineno + 1))
  | line :: rest ->
    cur.lines <- rest;
    cur.lineno <- cur.lineno + 1;
    Ok line

let fail cur msg = Error (Printf.sprintf "line %d: %s" cur.lineno msg)

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let expect_keyword cur key =
  let* line = next_line cur in
  match String.index_opt line ' ' with
  | Some i when String.sub line 0 i = key ->
    Ok (String.sub line (i + 1) (String.length line - i - 1))
  | Some _ | None -> fail cur (Printf.sprintf "expected %S header" key)

(* [float_of_string] happily parses "nan" and "inf"; a flow with a
   non-finite bound or fraction can only be a corrupted file, so reject
   it here rather than letting it poison every later verdict. *)
let parse_float cur what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Ok v
  | Some _ -> fail cur (Printf.sprintf "non-finite %s %S" what s)
  | None -> fail cur (Printf.sprintf "bad %s %S" what s)

let parse_int cur what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> fail cur (Printf.sprintf "bad %s %S" what s)

let parse_index_line cur key line =
  match String.split_on_char ' ' line with
  | k :: count :: rest when k = key ->
    let* count = parse_int cur "count" count in
    if List.length rest <> count then fail cur (key ^ " count mismatch")
    else begin
      let parsed = List.map int_of_string_opt rest in
      if List.exists (fun v -> v = None) parsed then
        fail cur ("bad index in " ^ key)
      else Ok (Array.of_list (List.map Option.get parsed))
    end
  | _ -> fail cur (Printf.sprintf "expected %S line" key)

let take_lines cur n =
  let rec go n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* line = next_line cur in
      go (n - 1) (line :: acc)
  in
  go n []

let parse_model cur =
  let* line = next_line cur in
  match String.split_on_char ' ' line with
  | [ "model"; "constant"; c ] ->
    let* c = parse_int cur "constant label" c in
    if c <> 1 && c <> -1 then fail cur "constant label must be +/-1"
    else Ok (Guard_band.Constant c)
  | [ "model"; ("svr" | "svc") as family; nlines ] ->
    let* nlines = parse_int cur "model line count" nlines in
    if nlines < 0 then fail cur "negative model line count"
    else
      let* body_lines = take_lines cur nlines in
      let body = String.concat "\n" body_lines ^ "\n" in
      if family = "svr" then begin
        match Model_io.svr_of_string body with
        | Ok m -> Ok (Guard_band.Svr m)
        | Error e -> fail cur ("embedded svr: " ^ e)
      end
      else begin
        match Model_io.svc_of_string body with
        | Ok m -> Ok (Guard_band.Svc m)
        | Error e -> fail cur ("embedded svc: " ^ e)
      end
  | _ -> fail cur "malformed model line"

let of_string text =
  let lines = String.split_on_char '\n' text in
  (* a well-formed flow ends with a newline: drop the final empty piece *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let cur = { lines; lineno = 0 } in
  let* header = next_line cur in
  if header <> version then
    if
      String.length header >= 9 && String.sub header 0 9 = "stc-flow-"
    then
      fail cur
        (Printf.sprintf "unsupported flow version %S (this build reads %S)"
           header version)
    else fail cur (Printf.sprintf "expected %S header, got %S" version header)
  else
    let* guard_fraction = expect_keyword cur "guard_fraction" in
    let* guard_fraction = parse_float cur "guard_fraction" guard_fraction in
    let* () =
      if guard_fraction >= 0.0 && guard_fraction < 1.0 then Ok ()
      else fail cur "guard_fraction out of range [0, 1)"
    in
    let* measured_guard = expect_keyword cur "measured_guard" in
    let* measured_guard =
      match measured_guard with
      | "1" -> Ok true
      | "0" -> Ok false
      | _ -> fail cur "measured_guard must be 0 or 1"
    in
    let* n_specs = expect_keyword cur "specs" in
    let* n_specs = parse_int cur "spec count" n_specs in
    if n_specs < 0 then fail cur "negative spec count"
    else
      let rec read_specs n acc =
        if n = 0 then Ok (Array.of_list (List.rev acc))
        else
          let* line = next_line cur in
          match String.split_on_char ' ' line with
          | [ "spec"; name; unit_label; nominal; lower; upper ] ->
            let* name =
              match decode_field name with
              | Ok v -> Ok v
              | Error e -> fail cur e
            in
            let* unit_label =
              match decode_field unit_label with
              | Ok v -> Ok v
              | Error e -> fail cur e
            in
            let* nominal = parse_float cur "nominal" nominal in
            let* lower = parse_float cur "lower" lower in
            let* upper = parse_float cur "upper" upper in
            (match Spec.make ~name ~unit_label ~nominal ~lower ~upper with
             | spec -> read_specs (n - 1) (spec :: acc)
             | exception Invalid_argument e -> fail cur e)
          | _ -> fail cur "malformed spec line"
      in
      let* specs = read_specs n_specs [] in
      let* kept_line = next_line cur in
      let* kept = parse_index_line cur "kept" kept_line in
      let* dropped_line = next_line cur in
      let* dropped = parse_index_line cur "dropped" dropped_line in
      let check_indices what indices =
        if Array.for_all (fun i -> i >= 0 && i < n_specs) indices then Ok ()
        else fail cur (what ^ " index out of range")
      in
      let* () = check_indices "kept" kept in
      let* () = check_indices "dropped" dropped in
      let* () =
        let seen = Array.make n_specs 0 in
        Array.iter (fun i -> seen.(i) <- seen.(i) + 1) kept;
        Array.iter (fun i -> seen.(i) <- seen.(i) + 1) dropped;
        if Array.for_all (fun c -> c = 1) seen then Ok ()
        else
          fail cur
            "kept and dropped must partition the spec indices (each spec \
             exactly once)"
      in
      let* band_line = next_line cur in
      let* band =
        match band_line with
        | "band none" -> Ok None
        | "band single" ->
          let* m = parse_model cur in
          Ok (Some (Guard_band.single_model m))
        | "band pair" ->
          let* tight = parse_model cur in
          let* loose = parse_model cur in
          Ok (Some (Guard_band.of_models ~tight ~loose))
        | _ -> fail cur "expected band line (none | single | pair)"
      in
      if cur.lines <> [] then fail cur "trailing content after flow"
      else
        Ok
          {
            Compaction.specs;
            kept;
            dropped;
            band;
            guard_fraction;
            measured_guard;
          }

(* ------------------------------- files ---------------------------- *)

let save ~path flow =
  match to_string flow with
  | Error _ as e -> e
  | Ok text ->
    (try
       let oc = open_out_bin path in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc text);
       Ok ()
     with Sys_error e -> Error e)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error e -> Error e
