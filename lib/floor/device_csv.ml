module Spec = Stc.Spec

let fp = Printf.sprintf "%.17g"

let write ~path ~specs ~rows =
  let k = Array.length specs in
  Array.iteri
    (fun i row ->
      if Array.length row <> k then
        invalid_arg "Device_csv.write: row width does not match spec count";
      Array.iteri
        (fun j v ->
          if not (Float.is_finite v) then
            invalid_arg
              (Printf.sprintf
                 "Device_csv.write: non-finite value at row %d, column %d" i j))
        row)
    rows;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (String.concat ","
           (Array.to_list (Array.map (fun s -> s.Spec.name) specs)));
      output_char oc '\n';
      Array.iter
        (fun row ->
          output_string oc
            (String.concat "," (Array.to_list (Array.map fp row)));
          output_char oc '\n')
        rows)

(* ------------------------------ streaming ------------------------- *)

(* The reader pulls one physical line at a time off the channel, so a
   consumer that bins batch-sized chunks (the network server, `stc
   serve --input -`) never materialises the whole floor run in memory.
   [read] below is a fold over the same reader, so both paths share one
   parser and one set of error messages. *)

type reader = {
  ic : in_channel;
  owns_channel : bool;  (* close on [close_reader]? not for stdin *)
  names : string array;
  mutable lineno : int;  (* physical 1-based line of the last line read *)
  mutable at_eof : bool;
  mutable closed : bool;
}

(* One physical line, CRLF-tolerant, blank lines skipped (the
   documented degradation for trailing newlines from external
   loggers); [None] at end of input. *)
let next_data_line r =
  let rec go () =
    match input_line r.ic with
    | exception End_of_file ->
      r.at_eof <- true;
      None
    | line ->
      r.lineno <- r.lineno + 1;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if line = "" then go () else Some line
  in
  if r.at_eof then None else go ()

let parse_row_cells ~lineno ~k cells =
  if List.length cells <> k then
    Error
      (Printf.sprintf "line %d: expected %d columns, got %d" lineno k
         (List.length cells))
  else begin
    let row = Array.make k 0.0 in
    let rec fill col = function
      | [] -> Ok row
      | cell :: more -> (
        match float_of_string_opt cell with
        | None ->
          Error
            (Printf.sprintf "line %d, column %d: non-numeric cell %S" lineno
               (col + 1) cell)
        | Some v when not (Float.is_finite v) ->
          Error
            (Printf.sprintf
               "line %d, column %d: non-finite cell %S (NaN/inf measurements \
                are rejected)"
               (lineno) (col + 1) cell)
        | Some v ->
          row.(col) <- v;
          fill (col + 1) more)
    in
    fill 0 cells
  end

let reader_of_channel ?(owns_channel = false) ic =
  let r =
    { ic; owns_channel; names = [||]; lineno = 0; at_eof = false; closed = false }
  in
  match next_data_line r with
  | None -> Error "empty CSV"
  | Some header ->
    let names = Array.of_list (String.split_on_char ',' header) in
    Ok { r with names }

let open_reader ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
    match reader_of_channel ~owns_channel:true ic with
    | Ok _ as ok -> ok
    | Error _ as e ->
      close_in_noerr ic;
      e)

let header r = Array.copy r.names

let close_reader r =
  if not r.closed then begin
    r.closed <- true;
    if r.owns_channel then close_in_noerr r.ic
  end

let next r =
  if r.closed then Error "reader is closed"
  else
    match next_data_line r with
    | None -> Ok None
    | Some line ->
      let cells = String.split_on_char ',' line in
      (match parse_row_cells ~lineno:r.lineno ~k:(Array.length r.names) cells with
       | Ok row -> Ok (Some row)
       | Error _ as e -> e)

let next_batch r ~max =
  if max < 1 then invalid_arg "Device_csv.next_batch: max must be >= 1";
  let rec go acc n =
    if n >= max then Ok (Array.of_list (List.rev acc))
    else
      match next r with
      | Error _ as e -> e
      | Ok None -> Ok (Array.of_list (List.rev acc))
      | Ok (Some row) -> go (row :: acc) (n + 1)
  in
  go [] 0

let read ~path =
  match open_reader ~path with
  | Error _ as e -> e
  | Ok r ->
    Fun.protect
      ~finally:(fun () -> close_reader r)
      (fun () ->
        let rec go acc =
          match next r with
          | Error _ as e -> e
          | Ok None -> Ok (header r, Array.of_list (List.rev acc))
          | Ok (Some row) -> go (row :: acc)
        in
        go [])
