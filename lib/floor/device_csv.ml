module Spec = Stc.Spec

let fp = Printf.sprintf "%.17g"

let write ~path ~specs ~rows =
  let k = Array.length specs in
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Device_csv.write: row width does not match spec count")
    rows;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (String.concat ","
           (Array.to_list (Array.map (fun s -> s.Spec.name) specs)));
      output_char oc '\n';
      Array.iter
        (fun row ->
          output_string oc
            (String.concat "," (Array.to_list (Array.map fp row)));
          output_char oc '\n')
        rows)

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text ->
    let lines =
      String.split_on_char '\n' text
      |> List.map (fun l ->
             (* tolerate CRLF input from external tools *)
             if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l)
      |> List.filter (fun l -> l <> "")
    in
    (match lines with
     | [] -> Error "empty CSV"
     | header :: body ->
       let names = Array.of_list (String.split_on_char ',' header) in
       let k = Array.length names in
       let rec parse_rows lineno acc = function
         | [] -> Ok (names, Array.of_list (List.rev acc))
         | line :: rest ->
           let cells = String.split_on_char ',' line in
           if List.length cells <> k then
             Error
               (Printf.sprintf "line %d: expected %d columns, got %d" lineno k
                  (List.length cells))
           else begin
             let parsed = List.map float_of_string_opt cells in
             if List.exists (fun v -> v = None) parsed then
               Error (Printf.sprintf "line %d: non-numeric cell" lineno)
             else
               parse_rows (lineno + 1)
                 (Array.of_list (List.map Option.get parsed) :: acc)
                 rest
           end
       in
       parse_rows 2 [] body)
