module Spec = Stc.Spec

let fp = Printf.sprintf "%.17g"

let write ~path ~specs ~rows =
  let k = Array.length specs in
  Array.iteri
    (fun i row ->
      if Array.length row <> k then
        invalid_arg "Device_csv.write: row width does not match spec count";
      Array.iteri
        (fun j v ->
          if not (Float.is_finite v) then
            invalid_arg
              (Printf.sprintf
                 "Device_csv.write: non-finite value at row %d, column %d" i j))
        row)
    rows;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (String.concat ","
           (Array.to_list (Array.map (fun s -> s.Spec.name) specs)));
      output_char oc '\n';
      Array.iter
        (fun row ->
          output_string oc
            (String.concat "," (Array.to_list (Array.map fp row)));
          output_char oc '\n')
        rows)

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text ->
    let lines =
      String.split_on_char '\n' text
      |> List.map (fun l ->
             (* tolerate CRLF input from external tools *)
             if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l)
      |> List.filter (fun l -> l <> "")
    in
    (match lines with
     | [] -> Error "empty CSV"
     | header :: body ->
       let names = Array.of_list (String.split_on_char ',' header) in
       let k = Array.length names in
       let rec parse_rows lineno acc = function
         | [] -> Ok (names, Array.of_list (List.rev acc))
         | line :: rest ->
           let cells = String.split_on_char ',' line in
           if List.length cells <> k then
             Error
               (Printf.sprintf "line %d: expected %d columns, got %d" lineno k
                  (List.length cells))
           else begin
             let row = Array.make k 0.0 in
             let rec fill col = function
               | [] -> Ok ()
               | cell :: more -> (
                 match float_of_string_opt cell with
                 | None ->
                   Error
                     (Printf.sprintf "line %d, column %d: non-numeric cell %S"
                        lineno (col + 1) cell)
                 | Some v when not (Float.is_finite v) ->
                   Error
                     (Printf.sprintf
                        "line %d, column %d: non-finite cell %S (NaN/inf \
                         measurements are rejected)"
                        lineno (col + 1) cell)
                 | Some v ->
                   row.(col) <- v;
                   fill (col + 1) more)
             in
             match fill 0 cells with
             | Error _ as e -> e
             | Ok () -> parse_rows (lineno + 1) (row :: acc) rest
           end
       in
       parse_rows 2 [] body)
