module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Tester = Stc.Tester
module Report = Stc.Report
module Pool = Stc_process.Pool

type config = {
  batch_size : int;
  domains : int;
}

let default_config = { batch_size = 256; domains = 1 }

type outcome = {
  bin : Tester.bin;
  verdict : Guard_band.verdict;
}

type stats = {
  devices : int;
  shipped : int;
  scrapped : int;
  retested : int;
  retries : int;
  degraded : int;
  batches : int;
  elapsed_s : float;
  last_batch_s : float;
}

let empty_stats =
  {
    devices = 0;
    shipped = 0;
    scrapped = 0;
    retested = 0;
    retries = 0;
    degraded = 0;
    batches = 0;
    elapsed_s = 0.0;
    last_batch_s = 0.0;
  }

type t = {
  flow : Compaction.flow;
  config : config;
  pool : Pool.t;
  mutable stats : stats;
  mutable degraded_mode : bool;
  mutable closed : bool;
}

let create ?(config = default_config) flow =
  if config.batch_size < 1 then
    invalid_arg "Floor.create: batch_size must be >= 1";
  if config.domains < 1 then invalid_arg "Floor.create: domains must be >= 1";
  {
    flow;
    config;
    pool = Pool.create ~domains:config.domains;
    stats = empty_stats;
    degraded_mode = false;
    closed = false;
  }

let flow t = t.flow
let config t = t.config
let stats t = t.stats
let degraded t = t.degraded_mode

let reset_stats t =
  t.stats <- empty_stats;
  t.degraded_mode <- false

(* One batch: verdicts fan out across the pool (each row's verdict is a
   pure function of the row, so scheduling cannot change it), then the
   guard escalations run sequentially in row order on the submitting
   domain — the retest callback stands for the full-test station and
   need not be thread-safe. *)
let process ?retest ?retry ?batch_deadline_s ?(strict = false) t rows =
  if t.closed then invalid_arg "Floor.process: engine is shut down";
  (match batch_deadline_s with
   | Some d when d <= 0.0 ->
     invalid_arg "Floor.process: batch_deadline_s must be positive"
   | _ -> ());
  let k = Array.length t.flow.Compaction.specs in
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Floor.process: row width does not match the flow's specs")
    rows;
  if strict then
    Array.iteri
      (fun r row ->
        Array.iter
          (fun j ->
            if not (Float.is_finite row.(j)) then
              invalid_arg
                (Printf.sprintf
                   "Floor.process: non-finite measurement in row %d, spec %d" r
                   j))
          t.flow.Compaction.kept)
      rows;
  let n = Array.length rows in
  let verdicts = Array.make n Guard_band.Good in
  let out = Array.make n { bin = Tester.Ship; verdict = Guard_band.Good } in
  let batch = t.config.batch_size in
  let lo = ref 0 in
  while !lo < n do
    let hi = Stdlib.min n (!lo + batch) in
    let base = !lo in
    let t0 = Unix.gettimeofday () in
    (* rows are claimed in chunks, not singly: one verdict costs only
       microseconds, so per-row atomic claims (and adjacent-cell verdict
       writes from different domains) would cost more than the work *)
    let len = hi - base in
    let chunk = Stdlib.max 1 (Stdlib.min 64 (len / t.config.domains)) in
    let n_chunks = (len + chunk - 1) / chunk in
    Pool.run t.pool ~n:n_chunks (fun c ->
        let first = base + (c * chunk) in
        let last = Stdlib.min (hi - 1) (first + chunk - 1) in
        for i = first to last do
          verdicts.(i) <- Compaction.flow_verdict t.flow rows.(i)
        done);
    let shipped = ref 0
    and scrapped = ref 0
    and retested = ref 0
    and retries = ref 0
    and degraded_n = ref 0 in
    (* A guard device the engine cannot escalate (station down, retries
       exhausted, deadline blown) is never dropped: it is binned Retest
       for a later station and counted [degraded]. *)
    let shed () =
      incr degraded_n;
      Tester.Retest
    in
    let past_deadline () =
      match batch_deadline_s with
      | None -> false
      | Some d -> Unix.gettimeofday () -. t0 >= d
    in
    let escalate row =
      match retest with
      | None -> Tester.Retest
      | Some full_test ->
        if t.degraded_mode then shed ()
        else if past_deadline () then shed ()
        else begin
          match retry with
          | None ->
            (* no policy: the callback's failures are the caller's *)
            if full_test row then begin
              incr shipped;
              Tester.Ship
            end
            else begin
              incr scrapped;
              Tester.Scrap
            end
          | Some policy ->
            let result, attempts_retried =
              Retry.run policy (fun () -> full_test row)
            in
            retries := !retries + attempts_retried;
            (match result with
             | Ok true ->
               incr shipped;
               Tester.Ship
             | Ok false ->
               incr scrapped;
               Tester.Scrap
             | Error _ ->
               (* the station keeps failing: stop hammering it and
                  serve every later guard device degraded until
                  [reset_stats] declares it repaired *)
               t.degraded_mode <- true;
               shed ())
        end
    in
    for i = base to hi - 1 do
      let bin =
        match verdicts.(i) with
        | Guard_band.Good ->
          incr shipped;
          Tester.Ship
        | Guard_band.Bad ->
          incr scrapped;
          Tester.Scrap
        | Guard_band.Guard ->
          incr retested;
          escalate rows.(i)
      in
      out.(i) <- { bin; verdict = verdicts.(i) }
    done;
    let dt = Unix.gettimeofday () -. t0 in
    t.stats <-
      {
        devices = t.stats.devices + (hi - base);
        shipped = t.stats.shipped + !shipped;
        scrapped = t.stats.scrapped + !scrapped;
        retested = t.stats.retested + !retested;
        retries = t.stats.retries + !retries;
        degraded = t.stats.degraded + !degraded_n;
        batches = t.stats.batches + 1;
        elapsed_s = t.stats.elapsed_s +. dt;
        last_batch_s = dt;
      };
    lo := hi
  done;
  out

let throughput t =
  if t.stats.elapsed_s <= 0.0 then 0.0
  else float_of_int t.stats.devices /. t.stats.elapsed_s

let report t =
  let s = t.stats in
  let pct part =
    if s.devices = 0 then "-"
    else Report.pct (100.0 *. float_of_int part /. float_of_int s.devices)
  in
  Report.table ~title:"floor engine"
    ~header:[ "counter"; "value"; "share" ]
    [
      [ "devices"; string_of_int s.devices; "" ];
      [ "shipped"; string_of_int s.shipped; pct s.shipped ];
      [ "scrapped"; string_of_int s.scrapped; pct s.scrapped ];
      [ "retested (guard)"; string_of_int s.retested; pct s.retested ];
      [ "retest retries"; string_of_int s.retries; "" ];
      [ "degraded (shed)"; string_of_int s.degraded; pct s.degraded ];
      [ "mode"; (if t.degraded_mode then "DEGRADED" else "normal"); "" ];
      [ "batches"; string_of_int s.batches; "" ];
      [ "elapsed"; Printf.sprintf "%.3f s" s.elapsed_s; "" ];
      [ "last batch"; Printf.sprintf "%.1f ms" (1000.0 *. s.last_batch_s); "" ];
      [ "throughput"; Printf.sprintf "%.0f devices/s" (throughput t); "" ];
    ]

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Pool.shutdown t.pool
  end

let with_engine ?config flow f =
  let t = create ?config flow in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
