module Compaction = Stc.Compaction
module Guard_band = Stc.Guard_band
module Tester = Stc.Tester
module Report = Stc.Report
module Spec = Stc.Spec
module Pool = Stc_process.Pool
module Obs = Stc_obs.Registry
module Clock = Stc_obs.Clock

(* Process-wide mirrors of the per-engine counters, plus the per-batch
   latency histogram the per-engine stats do not keep. *)
let m_devices = Obs.counter "stc_floor_devices_total"
let m_shipped = Obs.counter "stc_floor_shipped_total"
let m_scrapped = Obs.counter "stc_floor_scrapped_total"
let m_retested = Obs.counter "stc_floor_retested_total"
let m_retries = Obs.counter "stc_floor_retries_total"
let m_degraded = Obs.counter "stc_floor_degraded_total"
let m_batches = Obs.counter "stc_floor_batches_total"
let g_degraded_mode = Obs.gauge "stc_floor_degraded_mode"
let h_batch = Obs.histogram "stc_floor_batch_s"

type config = {
  batch_size : int;
  domains : int;
}

let default_config = { batch_size = 256; domains = 1 }

type outcome = {
  bin : Tester.bin;
  verdict : Guard_band.verdict;
}

type stats = {
  devices : int;
  shipped : int;
  scrapped : int;
  retested : int;
  retries : int;
  degraded : int;
  batches : int;
  elapsed_s : float;
  last_batch_s : float;
}

let empty_stats =
  {
    devices = 0;
    shipped = 0;
    scrapped = 0;
    retested = 0;
    retries = 0;
    degraded = 0;
    batches = 0;
    elapsed_s = 0.0;
    last_batch_s = 0.0;
  }

(* Per-engine counters live on the atomic registry representation so
   [stats] is a set of lock-free reads; [reset_stats] swaps the whole
   record for fresh zeroed atomics. The two timing fields stay plain
   mutable floats: only the submitting domain writes them. *)
type counters = {
  devices : Obs.Counter.t;
  shipped : Obs.Counter.t;
  scrapped : Obs.Counter.t;
  retested : Obs.Counter.t;
  retries : Obs.Counter.t;
  degraded : Obs.Counter.t;
  batches : Obs.Counter.t;
}

let fresh_counters () =
  {
    devices = Obs.Counter.make ();
    shipped = Obs.Counter.make ();
    scrapped = Obs.Counter.make ();
    retested = Obs.Counter.make ();
    retries = Obs.Counter.make ();
    degraded = Obs.Counter.make ();
    batches = Obs.Counter.make ();
  }

type t = {
  flow : Compaction.flow;
  config : config;
  pool : Pool.t;
  mutable counters : counters;
  mutable elapsed_s : float;
  mutable last_batch_s : float;
  mutable degraded_mode : bool;
  mutable closed : bool;
}

let create ?(config = default_config) flow =
  if config.batch_size < 1 then
    invalid_arg "Floor.create: batch_size must be >= 1";
  if config.domains < 1 then invalid_arg "Floor.create: domains must be >= 1";
  {
    flow;
    config;
    pool = Pool.create ~domains:config.domains;
    counters = fresh_counters ();
    elapsed_s = 0.0;
    last_batch_s = 0.0;
    degraded_mode = false;
    closed = false;
  }

let flow t = t.flow
let config t = t.config

let full_test (flow : Compaction.flow) row =
  Array.length row = Array.length flow.Compaction.specs
  && Array.for_all2 Spec.passes flow.Compaction.specs row

let stats t =
  let c = t.counters in
  {
    devices = Obs.Counter.get c.devices;
    shipped = Obs.Counter.get c.shipped;
    scrapped = Obs.Counter.get c.scrapped;
    retested = Obs.Counter.get c.retested;
    retries = Obs.Counter.get c.retries;
    degraded = Obs.Counter.get c.degraded;
    batches = Obs.Counter.get c.batches;
    elapsed_s = t.elapsed_s;
    last_batch_s = t.last_batch_s;
  }

let degraded t = t.degraded_mode

let reset_stats t =
  t.counters <- fresh_counters ();
  t.elapsed_s <- 0.0;
  t.last_batch_s <- 0.0;
  t.degraded_mode <- false;
  Obs.Gauge.set g_degraded_mode 0.0

(* One batch: verdicts fan out across the pool (each row's verdict is a
   pure function of the row, so scheduling cannot change it), then the
   guard escalations run sequentially in row order on the submitting
   domain — the retest callback stands for the full-test station and
   need not be thread-safe. *)
let process ?retest ?retry ?batch_deadline_s ?(strict = false) t rows =
  if t.closed then invalid_arg "Floor.process: engine is shut down";
  (match batch_deadline_s with
   | Some d when d <= 0.0 ->
     invalid_arg "Floor.process: batch_deadline_s must be positive"
   | _ -> ());
  let k = Array.length t.flow.Compaction.specs in
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Floor.process: row width does not match the flow's specs")
    rows;
  if strict then
    Array.iteri
      (fun r row ->
        Array.iter
          (fun j ->
            if not (Float.is_finite row.(j)) then
              invalid_arg
                (Printf.sprintf
                   "Floor.process: non-finite measurement in row %d, spec %d" r
                   j))
          t.flow.Compaction.kept)
      rows;
  let n = Array.length rows in
  let verdicts = Array.make n Guard_band.Good in
  let out = Array.make n { bin = Tester.Ship; verdict = Guard_band.Good } in
  let batch = t.config.batch_size in
  let lo = ref 0 in
  while !lo < n do
    let hi = Stdlib.min n (!lo + batch) in
    let base = !lo in
    let t0 = Clock.now () in
    (* rows are claimed in chunks, not singly: one verdict costs only
       microseconds, so per-row atomic claims (and adjacent-cell verdict
       writes from different domains) would cost more than the work *)
    let len = hi - base in
    let chunk = Stdlib.max 1 (Stdlib.min 64 (len / t.config.domains)) in
    let n_chunks = (len + chunk - 1) / chunk in
    Pool.run t.pool ~n:n_chunks (fun c ->
        let first = base + (c * chunk) in
        let last = Stdlib.min (hi - 1) (first + chunk - 1) in
        for i = first to last do
          verdicts.(i) <- Compaction.flow_verdict t.flow rows.(i)
        done);
    let shipped = ref 0
    and scrapped = ref 0
    and retested = ref 0
    and retries = ref 0
    and degraded_n = ref 0 in
    (* A guard device the engine cannot escalate (station down, retries
       exhausted, deadline blown) is never dropped: it is binned Retest
       for a later station and counted [degraded]. *)
    let shed () =
      incr degraded_n;
      Tester.Retest
    in
    let past_deadline () =
      match batch_deadline_s with
      | None -> false
      | Some d -> Clock.now () -. t0 >= d
    in
    let escalate row =
      match retest with
      | None -> Tester.Retest
      | Some full_test ->
        if t.degraded_mode then shed ()
        else if past_deadline () then shed ()
        else begin
          match retry with
          | None ->
            (* no policy: the callback's failures are the caller's *)
            if full_test row then begin
              incr shipped;
              Tester.Ship
            end
            else begin
              incr scrapped;
              Tester.Scrap
            end
          | Some policy ->
            let result, attempts_retried =
              Retry.run policy (fun () -> full_test row)
            in
            retries := !retries + attempts_retried;
            (match result with
             | Ok true ->
               incr shipped;
               Tester.Ship
             | Ok false ->
               incr scrapped;
               Tester.Scrap
             | Error _ ->
               (* the station keeps failing: stop hammering it and
                  serve every later guard device degraded until
                  [reset_stats] declares it repaired *)
               t.degraded_mode <- true;
               Obs.Gauge.set g_degraded_mode 1.0;
               shed ())
        end
    in
    for i = base to hi - 1 do
      let bin =
        match verdicts.(i) with
        | Guard_band.Good ->
          incr shipped;
          Tester.Ship
        | Guard_band.Bad ->
          incr scrapped;
          Tester.Scrap
        | Guard_band.Guard ->
          incr retested;
          escalate rows.(i)
      in
      out.(i) <- { bin; verdict = verdicts.(i) }
    done;
    let dt = Clock.now () -. t0 in
    let bump local mirror n =
      if n > 0 then begin
        Obs.Counter.add local n;
        Obs.Counter.add mirror n
      end
    in
    bump t.counters.devices m_devices (hi - base);
    bump t.counters.shipped m_shipped !shipped;
    bump t.counters.scrapped m_scrapped !scrapped;
    bump t.counters.retested m_retested !retested;
    bump t.counters.retries m_retries !retries;
    bump t.counters.degraded m_degraded !degraded_n;
    bump t.counters.batches m_batches 1;
    Obs.Histogram.observe h_batch dt;
    t.elapsed_s <- t.elapsed_s +. dt;
    t.last_batch_s <- dt;
    lo := hi
  done;
  out

let throughput t =
  if t.elapsed_s <= 0.0 then 0.0
  else float_of_int (Obs.Counter.get t.counters.devices) /. t.elapsed_s

let report t =
  let s = stats t in
  let pct part =
    if s.devices = 0 then "-"
    else Report.pct (100.0 *. float_of_int part /. float_of_int s.devices)
  in
  Report.table ~title:"floor engine"
    ~header:[ "counter"; "value"; "share" ]
    [
      [ "devices"; string_of_int s.devices; "" ];
      [ "shipped"; string_of_int s.shipped; pct s.shipped ];
      [ "scrapped"; string_of_int s.scrapped; pct s.scrapped ];
      [ "retested (guard)"; string_of_int s.retested; pct s.retested ];
      [ "retest retries"; string_of_int s.retries; "" ];
      [ "degraded (shed)"; string_of_int s.degraded; pct s.degraded ];
      [ "mode"; (if t.degraded_mode then "DEGRADED" else "normal"); "" ];
      [ "batches"; string_of_int s.batches; "" ];
      [ "elapsed"; Printf.sprintf "%.3f s" s.elapsed_s; "" ];
      [ "last batch"; Printf.sprintf "%.1f ms" (1000.0 *. s.last_batch_s); "" ];
      [ "throughput"; Printf.sprintf "%.0f devices/s" (throughput t); "" ];
    ]

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Pool.shutdown t.pool
  end

let with_engine ?config flow f =
  let t = create ?config flow in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
