module Rng = Stc_numerics.Rng

type classification =
  | Transient
  | Permanent

type policy = {
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
  seed : int;
  classify : exn -> classification;
}

let default_policy =
  {
    attempts = 3;
    base_delay_s = 0.001;
    max_delay_s = 0.05;
    jitter = 0.5;
    seed = 0x5743;  (* "WC", worst case *)
    classify = (fun _ -> Transient);
  }

(* Deterministic jitter: the stream depends only on (seed, retry), so
   the schedule is a pure function of the policy — reproducible, and
   uncorrelated across retries. *)
let delay_s policy ~retry =
  if retry < 1 then invalid_arg "Retry.delay_s: retry must be >= 1";
  let d =
    Stdlib.min policy.max_delay_s
      (policy.base_delay_s *. (2.0 ** float_of_int (retry - 1)))
  in
  if policy.jitter <= 0.0 then d
  else begin
    let rng = Rng.create ((policy.seed * 8191) + retry) in
    let j = Stdlib.min 1.0 policy.jitter in
    d *. (1.0 -. (j *. Rng.float rng))
  end

(* OCaml runtime conditions are bugs or resource exhaustion, never a
   flaky station: sleeping and calling again can only mask them. They
   propagate regardless of what [policy.classify] would say. *)
let fatal = function
  | Out_of_memory | Stack_overflow | Assert_failure _ | Match_failure _
  | Undefined_recursive_module _ ->
    true
  | _ -> false

let run ?(sleep = Unix.sleepf) policy f =
  if policy.attempts < 1 then invalid_arg "Retry.run: attempts must be >= 1";
  let rec go attempt =
    match f () with
    | v -> (Ok v, attempt - 1)
    | exception e when fatal e ->
      Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())
    | exception e ->
      (match policy.classify e with
       | Permanent -> (Error e, attempt - 1)
       | Transient ->
         if attempt >= policy.attempts then (Error e, attempt - 1)
         else begin
           sleep (delay_s policy ~retry:attempt);
           go (attempt + 1)
         end)
  in
  go 1
