/* Monotonic wall-clock stub for Stc_obs.Clock.

   OCaml 5.1's Unix library exposes only gettimeofday, whose value an
   NTP step can yank forwards or backwards mid-run — firing or
   suppressing every deadline computed against it. clock_gettime with
   CLOCK_MONOTONIC is immune to clock steps (it counts seconds since an
   arbitrary boot-time epoch), so all deadline arithmetic routes through
   this stub. Returns a negative value when the monotonic clock is
   unavailable, which the OCaml side treats as "fall back to
   gettimeofday". */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32

CAMLprim value stc_obs_clock_monotonic_s(value unit)
{
  (void)unit;
  return caml_copy_double(-1.0);
}

#else

#include <time.h>

CAMLprim value stc_obs_clock_monotonic_s(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return caml_copy_double(-1.0);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}

#endif
