external monotonic_s : unit -> float = "stc_obs_clock_monotonic_s"

(* probed once: the stub returns a negative value when CLOCK_MONOTONIC
   is unavailable, and a real monotonic reading is never negative *)
let monotonic = monotonic_s () >= 0.0

let now = if monotonic then monotonic_s else Unix.gettimeofday

let wall = Unix.gettimeofday
