(* All hot-path mutations are single Atomic operations; the registry
   mutex guards only registration and export. Never hold the mutex
   around user code. *)

(* Shortest decimal that parses back to the identical float, so the
   text exporter round-trips bit-exactly. *)
let float_str v =
  if v = Float.infinity then "inf"
  else if v = Float.neg_infinity then "-inf"
  else if Float.is_nan v then "nan"
  else begin
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v
  end

(* Lock-free float accumulation: CAS retry on the boxed value. *)
let atomic_add_float cell delta =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. delta)) then go ()
  in
  go ()

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let incr t = ignore (Atomic.fetch_and_add t 1)

  let add t n =
    if n < 0 then invalid_arg "Counter.add: counters are monotone";
    ignore (Atomic.fetch_and_add t n)

  let get = Atomic.get
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = float Atomic.t

  let make () = Atomic.make 0.0
  let set = Atomic.set
  let add = atomic_add_float
  let get = Atomic.get
  let reset t = Atomic.set t 0.0
end

module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing upper bounds *)
    buckets : int Atomic.t array;  (* one per bound + overflow last *)
    total : int Atomic.t;
    sum : float Atomic.t;
  }

  (* 1 µs .. 100 s, three buckets per decade: latencies from a single
     kernel evaluation up to a full greedy compaction all land in a
     resolved bucket. *)
  let default_buckets =
    let per_decade = [| 1.0; 2.5; 5.0 |] in
    Array.concat
      (List.map
         (fun e ->
           Array.map (fun m -> m *. (10.0 ** float_of_int e)) per_decade)
         [ -6; -5; -4; -3; -2; -1; 0; 1 ])
    |> fun a -> Array.append a [| 100.0 |]

  let make ?(buckets = default_buckets) () =
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Histogram.make: no buckets";
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then
          invalid_arg "Histogram.make: non-finite bucket bound";
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Histogram.make: bounds must be strictly increasing")
      buckets;
    {
      bounds = Array.copy buckets;
      buckets = Array.init (n + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum = Atomic.make 0.0;
    }

    (* binary search: first bucket whose bound is >= v; overflow if none *)
  let bucket_index t v =
    let n = Array.length t.bounds in
    if Float.is_nan v then n
    else begin
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if v <= t.bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let observe t v =
    ignore (Atomic.fetch_and_add t.buckets.(bucket_index t v) 1);
    ignore (Atomic.fetch_and_add t.total 1);
    atomic_add_float t.sum (if Float.is_nan v then 0.0 else v)

  let count t = Atomic.get t.total
  let sum t = Atomic.get t.sum

  let bucket_counts t =
    Array.init
      (Array.length t.buckets)
      (fun i ->
        let bound =
          if i < Array.length t.bounds then t.bounds.(i) else Float.infinity
        in
        (bound, Atomic.get t.buckets.(i)))

  let time t f =
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0))
      f

  let reset t =
    Array.iter (fun b -> Atomic.set b 0) t.buckets;
    Atomic.set t.total 0;
    Atomic.set t.sum 0.0
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_hist of Histogram.t

type t = {
  mutex : Mutex.t;
  table : (string, metric) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }
let global = create ()

let check_name name =
  if name = "" then invalid_arg "Registry: empty metric name";
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ':' then
        invalid_arg
          (Printf.sprintf "Registry: metric name %S contains whitespace or ':'"
             name))
    name

let intern registry name make_metric describe =
  check_name name;
  Mutex.lock registry.mutex;
  let metric =
    match Hashtbl.find_opt registry.table name with
    | Some m -> m
    | None ->
      let m = make_metric () in
      Hashtbl.add registry.table name m;
      m
  in
  Mutex.unlock registry.mutex;
  match describe metric with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Registry: metric %S already exists as another kind" name)

let counter ?(registry = global) name =
  intern registry name
    (fun () -> M_counter (Counter.make ()))
    (function M_counter c -> Some c | _ -> None)

let gauge ?(registry = global) name =
  intern registry name
    (fun () -> M_gauge (Gauge.make ()))
    (function M_gauge g -> Some g | _ -> None)

let histogram ?(registry = global) ?buckets name =
  intern registry name
    (fun () -> M_hist (Histogram.make ?buckets ()))
    (function M_hist h -> Some h | _ -> None)

let sorted_items registry =
  Mutex.lock registry.mutex;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.table [] in
  Mutex.unlock registry.mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) items

let reset ?(registry = global) () =
  Mutex.lock registry.mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Counter.reset c
      | M_gauge g -> Gauge.reset g
      | M_hist h -> Histogram.reset h)
    registry.table;
  Mutex.unlock registry.mutex

let bound_label b = if b = Float.infinity then "inf" else float_str b

let flatten ?(registry = global) () =
  List.concat_map
    (fun (name, m) ->
      match m with
      | M_counter c -> [ (name, float_of_int (Counter.get c)) ]
      | M_gauge g -> [ (name, Gauge.get g) ]
      | M_hist h ->
        (name ^ ".count", float_of_int (Histogram.count h))
        :: (name ^ ".sum", Histogram.sum h)
        :: Array.to_list
             (Array.map
                (fun (b, n) ->
                  (name ^ ".le_" ^ bound_label b, float_of_int n))
                (Histogram.bucket_counts h)))
    (sorted_items registry)

let to_text ?(registry = global) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "stc-metrics-1\n";
  List.iter
    (fun (name, m) ->
      match m with
      | M_counter c ->
        Buffer.add_string buf
          (Printf.sprintf "counter %s %d\n" name (Counter.get c))
      | M_gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "gauge %s %s\n" name (float_str (Gauge.get g)))
      | M_hist h ->
        Buffer.add_string buf
          (Printf.sprintf "hist %s %d %s" name (Histogram.count h)
             (float_str (Histogram.sum h)));
        Array.iter
          (fun (b, n) ->
            Buffer.add_string buf
              (Printf.sprintf " %s:%d" (bound_label b) n))
          (Histogram.bucket_counts h);
        Buffer.add_char buf '\n')
    (sorted_items registry);
  Buffer.contents buf

let parse_text text =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> fail "empty metrics export"
  | header :: rest ->
    if header <> "stc-metrics-1" then
      fail "bad metrics header %S (want stc-metrics-1)" header
    else begin
      let parse_float ~line s =
        match float_of_string_opt s with
        | Some v -> Ok v
        | None -> fail "line %d: bad number %S" line s
      in
      let rec go acc lineno = function
        | [] -> Ok (List.rev acc)
        | "" :: rest -> go acc (lineno + 1) rest
        | line :: rest -> (
          let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
          match String.split_on_char ' ' line with
          | [ "counter"; name; v ] | [ "gauge"; name; v ] ->
            let* v = parse_float ~line:lineno v in
            go ((name, v) :: acc) (lineno + 1) rest
          | "hist" :: name :: count :: sum :: buckets ->
            let* count = parse_float ~line:lineno count in
            let* sum = parse_float ~line:lineno sum in
            let* pairs =
              List.fold_left
                (fun acc pair ->
                  let* acc = acc in
                  match String.index_opt pair ':' with
                  | None -> fail "line %d: bad bucket %S" lineno pair
                  | Some i ->
                    let bound = String.sub pair 0 i in
                    let n =
                      String.sub pair (i + 1) (String.length pair - i - 1)
                    in
                    let* n = parse_float ~line:lineno n in
                    Ok ((name ^ ".le_" ^ bound, n) :: acc))
                (Ok []) buckets
            in
            (* [pairs] is already reversed; the final [List.rev] puts the
               buckets back in bound order, after count and sum — the
               exact {!flatten} layout *)
            go
              (pairs @ ((name ^ ".sum", sum) :: (name ^ ".count", count) :: acc))
              (lineno + 1) rest
          | _ -> fail "line %d: unparseable metric line %S" lineno line)
      in
      go [] 2 rest
    end

let to_json ?(registry = global) () =
  let fields =
    List.map
      (fun (name, m) ->
        match m with
        | M_counter c -> (name, Json.Num (float_of_int (Counter.get c)))
        | M_gauge g -> (name, Json.Num (Gauge.get g))
        | M_hist h ->
          ( name,
            Json.Obj
              [
                ("count", Json.Num (float_of_int (Histogram.count h)));
                ("sum", Json.Num (Histogram.sum h));
                ( "buckets",
                  Json.Obj
                    (Array.to_list
                       (Array.map
                          (fun (b, n) ->
                            (bound_label b, Json.Num (float_of_int n)))
                          (Histogram.bucket_counts h))) );
              ] ))
      (sorted_items registry)
  in
  Json.to_string (Json.Obj fields)
