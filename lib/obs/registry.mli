(** A process-wide metric registry that is safe to update from pool
    worker domains: every mutation is a single [Atomic] operation (or a
    CAS retry loop for float accumulation), so concurrent increments
    are never lost and no lock is ever taken on a hot path. Locks exist
    only around registration and export, which are cold.

    Naming convention (see README "Observability"): [stc_<area>_<what>]
    with a [_total] suffix for counters and an [_s] suffix for
    latency histograms, e.g. [stc_pool_timeouts_total],
    [stc_floor_batch_s]. *)

module Counter : sig
  type t

  val make : unit -> t
  (** A standalone (unregistered) counter — used for per-instance
      statistics like [Pool.stats] that must survive concurrent
      increments but do not belong in the process-wide export. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** [add] with a negative amount raises [Invalid_argument]: counters
      are monotone by construction. *)

  val get : t -> int
end

module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val get : t -> float
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Exponential latency buckets, 1 µs .. 100 s. *)

  val make : ?buckets:float array -> unit -> t
  (** [buckets] are the inclusive upper bounds of each bucket, strictly
      increasing and finite; an implicit overflow bucket catches the
      rest. Raises [Invalid_argument] otherwise. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val bucket_counts : t -> (float * int) array
  (** One [(upper_bound, count)] per bucket, non-cumulative, the
      overflow bucket last as [(infinity, count)]. The counts sum to
      {!count} whenever the histogram is quiescent. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Runs the thunk and observes its wall-clock duration (also on
      exception). *)
end

type t
(** A registry: a name-keyed set of metrics. *)

val create : unit -> t

val global : t
(** The process-wide registry every instrumented module records into. *)

(** Metric lookups intern by name: the first call creates the metric,
    later calls return the same object. Requesting an existing name as
    a different kind raises [Invalid_argument]. Names must be non-empty
    and contain no whitespace. *)

val counter : ?registry:t -> string -> Counter.t
val gauge : ?registry:t -> string -> Gauge.t

val histogram : ?registry:t -> ?buckets:float array -> string -> Histogram.t
(** [buckets] only applies on first creation; later lookups ignore it. *)

val reset : ?registry:t -> unit -> unit
(** Zeroes every registered metric (counts, sums, buckets, gauges).
    For test isolation and bench sections; not for production paths. *)

val flatten : ?registry:t -> unit -> (string * float) list
(** Every metric as name–value pairs, sorted by name: a counter or
    gauge is one pair; a histogram [h] becomes [h.count], [h.sum] and
    one [h.le_<bound>] pair per bucket ([h.le_inf] for overflow). This
    is the canonical scalar view used for export round-trips and bench
    section deltas. *)

val to_text : ?registry:t -> unit -> string
(** The [stc-metrics-1] text format: a header line, then one line per
    metric, sorted by name —
    [counter <name> <value>], [gauge <name> <value>], or
    [hist <name> <count> <sum> <bound>:<n> ... inf:<n>].
    Floats are printed with enough digits to round-trip exactly. *)

val parse_text : string -> ((string * float) list, string) result
(** Parses {!to_text} output back to the {!flatten} view. For any
    registry [r], [parse_text (to_text ~registry:r ())] equals
    [Ok (flatten ~registry:r ())] while [r] is quiescent. *)

val to_json : ?registry:t -> unit -> string
(** One JSON object: counters and gauges as numbers, histograms as
    [{"count": n, "sum": s, "buckets": {"<bound>": n, ..., "inf": n}}]. *)
