(** A minimal JSON reader/writer — just enough for the metric exporter,
    the bench harness's machine-readable [BENCH_*.json] files, and the
    network serving tier's [METRICS] scrape endpoint, so none of them
    pulls in an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_to_string : float -> string
(** Shortest decimal that reads back to the same float; non-finite
    values (which JSON cannot carry) render as [null]. *)

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation;
    strings are escaped per RFC 8259. *)

val of_string : string -> (t, string) result
(** Parses one RFC 8259 JSON value (objects keep field order, duplicate
    keys are kept as-is). For any [t] whose numbers are finite,
    [of_string (to_string t) = Ok t]. Errors are ["byte %d: %s"]-
    prefixed; trailing non-whitespace content is rejected. [\u] escapes
    decode to UTF-8 (surrogate pairs combined). *)

val member : string -> t -> t option
(** First field of that name when the value is an [Obj]; [None]
    otherwise — the lookup shape every scrape consumer needs. *)
