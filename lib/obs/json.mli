(** A minimal JSON writer — just enough for the metric exporter and the
    bench harness's machine-readable [BENCH_*.json] files, so neither
    pulls in an external JSON dependency. Writing only; the repo never
    needs to parse general JSON back (the metric text format is the
    round-trippable one). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_to_string : float -> string
(** Shortest decimal that reads back to the same float; non-finite
    values (which JSON cannot carry) render as [null]. *)

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints with two-space indentation;
    strings are escaped per RFC 8259. *)
