type span = {
  id : int;
  parent : int;
  domain : int;
  t_s : float;
  dur_s : float;
}

let enabled_flag = Atomic.make false
let next_id = Atomic.make 1

(* The ring and epoch live under one mutex, touched only when a span
   completes (and then only briefly) — open spans cost nothing shared. *)
let mutex = Mutex.create ()
let capacity = ref 65536
let ring : (span * string) option array ref = ref (Array.make !capacity None)
let written = ref 0
let epoch = ref (Unix.gettimeofday ())

(* Per-domain stack of open span ids: nesting never crosses a domain
   boundary, so worker-domain spans are roots of their own chains. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock mutex;
  Array.fill !ring 0 (Array.length !ring) None;
  written := 0;
  epoch := Unix.gettimeofday ();
  Mutex.unlock mutex

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Mutex.lock mutex;
  capacity := n;
  ring := Array.make n None;
  written := 0;
  Mutex.unlock mutex

let sanitize name =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) name

let record span name =
  Mutex.lock mutex;
  let t_s = span.t_s -. !epoch in
  !ring.(!written mod !capacity) <- Some ({ span with t_s }, sanitize name);
  incr written;
  Mutex.unlock mutex

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> 0 | p :: _ -> p in
    let id = Atomic.fetch_and_add next_id 1 in
    stack := id :: !stack;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        (match !stack with
         | s :: rest when s = id -> stack := rest
         | other ->
           (* unbalanced pops cannot happen through this API; recover
              by cutting the stack back past our id anyway *)
           let rec cut = function
             | [] -> []
             | s :: rest -> if s = id then rest else cut rest
           in
           stack := cut other);
        record
          {
            id;
            parent;
            domain = (Domain.self () :> int);
            t_s = t0 (* made epoch-relative inside [record] *);
            dur_s = t1 -. t0;
          }
          name)
      f
  end

let spans () =
  Mutex.lock mutex;
  let cap = !capacity and n = !written in
  let first = if n > cap then n - cap else 0 in
  let out = ref [] in
  for i = n - 1 downto first do
    match !ring.(i mod cap) with
    | Some entry -> out := entry :: !out
    | None -> ()
  done;
  Mutex.unlock mutex;
  !out

let float_str v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let to_text () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "stc-trace-1\n";
  List.iter
    (fun (s, name) ->
      Buffer.add_string buf
        (Printf.sprintf "span %d %d %d %s %s %s\n" s.id s.parent s.domain
           (float_str s.t_s) (float_str s.dur_s) name))
    (spans ());
  Buffer.contents buf

let parse text =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match String.split_on_char '\n' text with
  | header :: rest when header = "stc-trace-1" ->
    let parse_line lineno line =
      (* span <id> <parent> <domain> <t_s> <dur_s> <name with spaces> *)
      match String.split_on_char ' ' line with
      | "span" :: id :: parent :: domain :: t_s :: dur_s :: name_words
        when name_words <> [] -> (
        match
          ( int_of_string_opt id,
            int_of_string_opt parent,
            int_of_string_opt domain,
            float_of_string_opt t_s,
            float_of_string_opt dur_s )
        with
        | Some id, Some parent, Some domain, Some t_s, Some dur_s ->
          Ok ({ id; parent; domain; t_s; dur_s }, String.concat " " name_words)
        | _ -> fail "line %d: bad span fields %S" lineno line)
      | _ -> fail "line %d: unparseable span line %S" lineno line
    in
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | "" :: rest -> go acc (lineno + 1) rest
      | line :: rest -> (
        match parse_line lineno line with
        | Ok entry -> go (entry :: acc) (lineno + 1) rest
        | Error _ as e -> e)
    in
    go [] 2 rest
  | header :: _ -> fail "bad trace header %S (want stc-trace-1)" header
  | [] -> fail "empty trace"

let check_well_formed entries =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let eps = 1e-6 in
  let by_id = Hashtbl.create 64 in
  let rec index = function
    | [] -> Ok ()
    | ((s : span), _) :: rest ->
      if Hashtbl.mem by_id s.id then fail "duplicate span id %d" s.id
      else if s.dur_s < 0.0 then fail "span %d has negative duration" s.id
      else begin
        Hashtbl.add by_id s.id s;
        index rest
      end
  in
  let rec check = function
    | [] -> Ok ()
    | ((s : span), name) :: rest ->
      if s.parent = 0 then check rest
      else begin
        match Hashtbl.find_opt by_id s.parent with
        | None -> fail "span %d (%s): orphan parent id %d" s.id name s.parent
        | Some p ->
          if p.domain <> s.domain then
            fail "span %d (%s): parent %d lives on another domain" s.id name
              p.id
          else if
            p.t_s > s.t_s +. eps
            || s.t_s +. s.dur_s > p.t_s +. p.dur_s +. eps
          then
            fail "span %d (%s): parent %d does not enclose it" s.id name p.id
          else check rest
      end
  in
  match index entries with Error _ as e -> e | Ok () -> check entries
