(** A lightweight span tracer, safe to call from pool worker domains.

    Spans time a named region of code on a wall clock relative to the
    tracer's epoch. Nesting is tracked per domain (domain-local state),
    so concurrent workers each carry their own parent chain and never
    contend except for one short lock when a span completes. Completed
    spans land in a bounded ring buffer — tracing never grows memory
    without bound; the oldest spans are evicted first. Because a parent
    completes after its children, eviction can only drop children of
    retained spans, never the parent of a retained child.

    Tracing is off by default and {!with_span} is a direct call to the
    thunk while disabled, so instrumented hot paths cost one atomic
    load when idle. *)

type span = {
  id : int;  (** unique per process run, starting at 1 *)
  parent : int;  (** enclosing span's id, or 0 for a root span *)
  domain : int;  (** numeric id of the domain that ran the span *)
  t_s : float;  (** start time, seconds since the tracer epoch *)
  dur_s : float;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_capacity : int -> unit
(** Ring-buffer size (default 65536 spans). Clears retained spans.
    Raises [Invalid_argument] when not positive. *)

val clear : unit -> unit
(** Drops retained spans and resets the epoch; does not change the
    enabled flag or capacity. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a span named [string]. The span is recorded
    when the thunk returns or raises. Names must not contain newlines
    (enforced at record time by replacing them with spaces). While
    tracing is disabled this is just [f ()]. *)

val spans : unit -> (span * string) list
(** Retained spans with their names, in completion order (oldest
    first). *)

val to_text : unit -> string
(** The [stc-trace-1] format: a header line, then one
    [span <id> <parent> <domain> <t_s> <dur_s> <name>] line per
    retained span in completion order. Names may contain spaces; they
    extend to the end of the line. *)

val parse : string -> ((span * string) list, string) result
(** Parses {!to_text} output; the round trip preserves every field. *)

val check_well_formed : (span * string) list -> (unit, string) result
(** The nesting laws a dump of fully-completed spans must satisfy:
    ids are unique; every non-zero parent id refers to a retained span;
    and a parent's [t_s .. t_s + dur_s] interval encloses each child's
    (small clock slack tolerated). *)
