(** The process clock every deadline computes against.

    [now] is {e monotonic}: seconds since an arbitrary epoch (boot
    time on Linux), immune to NTP steps and manual clock changes, so
    [deadline = now () +. timeout_s] can never fire early or hang late
    because the wall clock jumped. [wall] is the calendar clock for
    timestamps meant to be read by humans or correlated across
    machines.

    Rule of thumb (enforced by convention across the tree): arithmetic
    on {e durations} — deadlines, timeouts, elapsed measurements,
    heartbeat ages — uses {!now}; anything printed as a date uses
    {!wall}. Never mix the two: they have different epochs. *)

val now : unit -> float
(** Monotonic seconds. Backed by [clock_gettime(CLOCK_MONOTONIC)]; on
    the (never observed) platforms where that fails it falls back to
    [Unix.gettimeofday], preserving behaviour rather than refusing to
    run. *)

val monotonic : bool
(** Whether {!now} is genuinely monotonic on this platform (i.e. the
    [CLOCK_MONOTONIC] stub works). Exposed so tests can assert the
    strong property only where it holds. *)

val wall : unit -> float
(** [Unix.gettimeofday] — calendar time, for display only. *)
