type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Shortest representation that round-trips: try %.12g first so common
   values print compactly, fall back to %.17g when it loses bits. *)
let num_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else begin
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v
  end

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf
