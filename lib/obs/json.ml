type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Shortest representation that round-trips: try %.12g first so common
   values print compactly, fall back to %.17g when it loses bits. *)
let num_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else begin
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v
  end

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------ parsing --------------------------- *)

(* A recursive-descent RFC 8259 parser, added for the network serving
   tier: a METRICS scrape returns the registry's JSON export, and both
   the test client and the QA checks need to read it back without an
   external dependency. Errors carry the byte offset. *)

exception Parse_error of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %C, got %C" c got)
    | None -> error (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub text !pos w = word then begin
      pos := !pos + w;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> error (Printf.sprintf "bad hex digit %C in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  (* encode one code point as UTF-8; surrogate pairs are combined by
     the caller *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> error "unterminated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              let cp = hex4 () in
              let cp =
                if cp >= 0xd800 && cp <= 0xdbff then begin
                  (* high surrogate: a low surrogate must follow *)
                  if
                    !pos + 1 < n && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xdc00 && lo <= 0xdfff then
                      0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                    else error "invalid low surrogate"
                  end
                  else error "unpaired high surrogate"
                end
                else if cp >= 0xdc00 && cp <= 0xdfff then
                  error "unpaired low surrogate"
                else cp
              in
              add_utf8 buf cp
            | c -> error (Printf.sprintf "invalid escape \\%C" c)));
        go ()
      | Some c when Char.code c < 0x20 ->
        error "unescaped control character in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && (match text.[!pos] with '0' .. '9' -> true | _ -> false)
      do
        advance ()
      done;
      if !pos = d0 then error "malformed number"
    in
    (* RFC 8259 int part: a lone 0, or a nonzero digit then digits *)
    (match peek () with
     | Some '0' -> (
       advance ();
       match peek () with
       | Some '0' .. '9' -> error "leading zero in number"
       | _ -> ())
     | Some '1' .. '9' -> digits ()
     | _ -> error "malformed number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
       digits ()
     | _ -> ());
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some v -> v
    | None -> error (Printf.sprintf "malformed number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> error "expected ',' or '}' in object"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> error "expected ',' or ']' in array"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing content after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf
