let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean xs =
  require_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> let d = x -. m in acc := !acc +. (d *. d)) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  require_nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  require_nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  require_nonempty "quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let covariance xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.covariance: length mismatch";
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation xs ys =
  let sx = stddev xs and sy = stddev ys in
  if sx = 0.0 || sy = 0.0 then 0.0 else covariance xs ys /. (sx *. sy)

let histogram xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if lo >= hi then invalid_arg "Stats.histogram: lo >= hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float (Float.floor ((x -. lo) /. width)) in
      let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts

let summary xs =
  if Array.length xs = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
      (Array.length xs) (mean xs) (stddev xs) (min xs) (median xs) (max xs)
